"""R016–R020 verdicts over the package concurrency model.

One :class:`ThreadAnalysis` per package (cached on the
:class:`~.model.PackageModel`, which is itself cached per directory);
the per-file rules in :mod:`.rules` filter the package-wide findings to
the file under lint, so linting a whole directory costs one model build
and one analysis pass no matter how many files it has.

The five checks:

* **R016** — a class attribute written outside ``__init__`` and
  accessed from ≥ 2 thread roles whose locksets share no common lock.
  Same-role accesses are serialized by the thread itself; ``__init__``
  writes are publication (they happen before the handle escapes).
* **R017** — a blocking call (typed ``Queue.get`` / ``Thread.join`` /
  ``Future.result`` / ``Event.wait`` / ``Condition.wait``, ``sleep``,
  simulated I/O ``sync``/``fsync``) while holding a lock, directly or
  through package-local calls.  ``Condition.wait`` is exempt for the
  condition's own lock (wait releases it), not for any other.
* **R018** — a thread/future handle that no path joins or consumes:
  dropped outright, or stored in a root (local, attribute, container)
  that nothing ever ``join()``s / ``result()``s / hands a callback.
* **R019** — check-then-act: a branch test reads a shared multi-role
  attribute and the governed body writes it, with no lock common to
  test and write — the classic racy ``if k not in d: d[k] = v``.
* **R020** — ``Condition.wait`` outside a ``while`` predicate loop;
  wakeups may be spurious or stale, so the predicate must be re-checked.

Every finding carries the thread role(s) involved and a witness path in
the flow-engine style: the spawn/API entry that establishes the role,
the call chain to the access, and the conflicting sites.  Witness steps
in sibling files keep the anchor file's line but name the real site in
the note (``workers.py:93 …``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .model import AttrAccess, PackageModel, package_model
from .roles import RoleMap, entry_methods, infer_roles

__all__ = ["ThreadFinding", "ThreadAnalysis", "analysis_for_path"]

_CACHE_ATTR = "_engine_cache"


@dataclass(frozen=True)
class ThreadFinding:
    rule_id: str
    path: Path              # resolved file the finding anchors in
    line: int
    col: int
    message: str
    witness: tuple[tuple[int, str], ...] = ()


def _fmt_locks(lockset: frozenset[str]) -> str:
    if not lockset:
        return "no lock"
    return "{" + ", ".join(sorted(lockset)) + "}"


class ThreadAnalysis:
    """All thread-topology findings for one package."""

    def __init__(self, model: PackageModel):
        self.model = model
        self.roles: RoleMap = infer_roles(model)
        self.findings: list[ThreadFinding] = []
        self._shared_attrs: dict[tuple[str, str], set[str]] = {}
        self._inherited = self._inherited_locksets()
        self._collect_shared()
        self._check_r016()
        self._check_r017()
        self._check_r018()
        self._check_r019()
        self._check_r020()
        self.findings.sort(key=lambda f: (str(f.path), f.line, f.col,
                                          f.rule_id))

    # -- shared-attribute census ----------------------------------------

    def _attr_accesses(self) -> dict[tuple[str, str], list[AttrAccess]]:
        grouped: dict[tuple[str, str], list[AttrAccess]] = {}
        for mi in self.model.methods.values():
            for access in mi.accesses:
                grouped.setdefault((access.cls, access.attr),
                                   []).append(access)
        return grouped

    def _collect_shared(self) -> None:
        """(cls, attr) -> union of roles that reach any access."""
        for key, accesses in self._attr_accesses().items():
            roles: set[str] = set()
            for access in accesses:
                roles |= self.roles.of(access.method)
            if len(roles) >= 2:
                self._shared_attrs[key] = roles

    # -- interprocedural lockset fixpoint --------------------------------

    def _inherited_locksets(self) -> dict[str, frozenset[str]]:
        """method -> locks guaranteed held on *every* entry to it.

        Locksets in the model are lexical; a helper like
        ``HealQueue._emit`` that is only ever called with the shard's
        entry lock held reads as "no lock" without this.  The fixpoint
        starts entries (spawn targets, public API — callable with no
        package lock held) at ∅ and everything else at ⊤, then shrinks
        each callee to the intersection over its call sites of the
        caller's inherited locks plus the locks lexically held at the
        site."""
        universe: set[str] = set()
        sites = []
        for mi in self.model.methods.values():
            for access in mi.accesses:
                universe |= access.lockset
            for call in mi.calls:
                universe |= call.lockset
                sites.append(call)
        top = frozenset(universe)
        entries = entry_methods(self.model)
        inherited = {
            name: frozenset() if name in entries else top
            for name in self.model.methods
        }
        changed = True
        while changed:
            changed = False
            for site in sites:
                current = inherited.get(site.callee)
                if current is None:
                    continue
                incoming = inherited.get(site.caller,
                                         frozenset()) | site.lockset
                merged = current & incoming
                if merged != current:
                    inherited[site.callee] = merged
                    changed = True
        return inherited

    def _eff(self, access: AttrAccess) -> frozenset[str]:
        """The access's effective lockset: lexical plus inherited."""
        return access.lockset | self._inherited.get(access.method,
                                                    frozenset())

    # -- witness assembly ------------------------------------------------

    def _role_steps(self, method: str, role: str, anchor_file: str,
                    anchor_line: int) -> list[tuple[int, str]]:
        steps = []
        for file, line, note in self.roles.chain(method, role, limit=3):
            steps.append((line if file == anchor_file else anchor_line,
                          note))
        return steps

    def _access_note(self, access: AttrAccess, role: str) -> str:
        return (f"{access.file}:{access.line} {access.method} "
                f"{'writes' if access.kind == 'write' else 'reads'} "
                f"{access.cls}.{access.attr} as role {role!r} holding "
                f"{_fmt_locks(self._eff(access))}")

    # -- R016 -------------------------------------------------------------

    def _check_r016(self) -> None:
        for (cls, attr), accesses in sorted(self._attr_accesses().items()):
            roles = self._shared_attrs.get((cls, attr))
            if roles is None:
                continue
            live = [a for a in accesses
                    if not a.in_init and self.roles.of(a.method)]
            writes = [a for a in live if a.kind == "write"]
            if not writes:
                continue
            common = None
            for access in live:
                common = self._eff(access) if common is None \
                    else common & self._eff(access)
            if common:
                continue
            if self._handoff_publishes(cls, writes, live):
                continue
            anchor = min(writes,
                         key=lambda a: (len(self._eff(a)), a.file, a.line))
            role_a = sorted(self.roles.of(anchor.method))[0]
            other = self._conflicting(live, anchor, role_a)
            if other is None:
                continue
            access_b, role_b = other
            witness = []
            witness += self._role_steps(anchor.method, role_a,
                                        anchor.file, anchor.line)
            witness.append((anchor.line, self._access_note(anchor, role_a)))
            witness += self._role_steps(access_b.method, role_b,
                                        anchor.file, anchor.line)
            witness.append((anchor.line if access_b.file != anchor.file
                            else access_b.line,
                            self._access_note(access_b, role_b)))
            self.findings.append(ThreadFinding(
                "R016", self._path_of(anchor.file), anchor.line,
                anchor.col,
                f"shared attribute {cls}.{attr} is accessed from roles "
                f"{sorted(roles)} with no common lock: {anchor.method} "
                f"writes it as {role_a!r} holding "
                f"{_fmt_locks(self._eff(anchor))}, {access_b.method} "
                f"{'writes' if access_b.kind == 'write' else 'reads'} it "
                f"as {role_b!r} holding {_fmt_locks(self._eff(access_b))}",
                tuple(witness)))

    def _handoff_publishes(self, cls: str, writes: list[AttrAccess],
                           live: list[AttrAccess]) -> bool:
        """True when the attribute is a handoff publication: every
        non-init write comes from exactly one role, and each cross-role
        read is ordered after those writes by a recorded happens-before
        edge (put->get, set->wait, thread/future completion) whose
        source carries the writer role.  The edge orders a read when it
        lands in the reading method itself (``wait_result`` waits, then
        reads), or when the object was *born on the writer thread* and
        only the handoff made it reachable at all (``OpResult`` built
        by the worker, read by the caller after ``done.wait()``)."""
        writer_roles: set[str] = set()
        for access in writes:
            writer_roles |= self.roles.of(access.method)
        if len(writer_roles) != 1:
            return False
        writer = next(iter(writer_roles))
        # "born on the writer thread": the writer role instantiates
        # this class, so the instances it writes only become reachable
        # to other roles through the handoff itself.  (A caller-side
        # instantiation — e.g. the failed-report fallback — makes an
        # instance that never crosses threads, so it does not defeat
        # ownership.)
        owned = writer in self._creation_roles(cls)
        covering = [edge for edge in self.model.hb_edges
                    if writer in self.roles.of(edge["src"][0])]
        for access in live:
            for role in self.roles.of(access.method) - writer_roles:
                ordered = any(
                    role in self.roles.of(edge["dst"][0]) and
                    (owned or edge["dst"][0] == access.method)
                    for edge in covering)
                if not ordered:
                    return False
        return True

    def _creation_roles(self, cls: str) -> set[str]:
        """Roles of every method that instantiates *cls*."""
        roles: set[str] = set()
        for mi in self.model.methods.values():
            if cls in mi.instantiates:
                roles |= self.roles.of(mi.qualname)
        return roles

    def _conflicting(self, live: list[AttrAccess], anchor: AttrAccess,
                     role_a: str):
        """The best conflicting access: another role, disjoint lockset,
        preferring a different method/file for a readable witness."""
        best: tuple[AttrAccess, str] | None = None
        for access in live:
            for role in sorted(self.roles.of(access.method)):
                if role == role_a:
                    continue
                if self._eff(access) & self._eff(anchor):
                    continue
                candidate = (access, role)
                if best is None:
                    best = candidate
                elif access.method != anchor.method and \
                        best[0].method == anchor.method:
                    best = candidate
        return best

    # -- R017 -------------------------------------------------------------

    # blocking primitives that first *release* the lock they name: the
    # Condition-style drop-and-reacquire handoff.  Holding that same
    # lock at the call is the pattern working as designed, not a stall.
    _RELEASES_OWN = ("Condition.wait()", "Lock.acquire()")

    def _may_block(self) -> dict[str, tuple[str, str, int, str | None,
                                            bool]]:
        """method -> (desc, file, line, receiver, releases_own) of one
        reachable blocking call, via a package-local call-graph
        fixpoint.  ``receiver``/``releases_own`` travel with the chain
        so call-site checks can apply the drop-and-reacquire exemption
        transitively (a wait wrapper like ``LatchManager._wait``)."""
        blocked: dict[str, tuple[str, str, int, str | None, bool]] = {}
        for mi in self.model.methods.values():
            if mi.blocking:
                b = mi.blocking[0]
                blocked[mi.qualname] = (b.desc, b.file, b.line, b.receiver,
                                        b.desc in self._RELEASES_OWN)
        changed = True
        while changed:
            changed = False
            for mi in self.model.methods.values():
                if mi.qualname in blocked:
                    continue
                for call in mi.calls:
                    if call.callee in blocked:
                        desc, file, line, recv, rel = blocked[call.callee]
                        blocked[mi.qualname] = (
                            f"{desc} via {call.callee}", file, line,
                            recv, rel)
                        changed = True
                        break
        return blocked

    def _check_r017(self) -> None:
        blocked = self._may_block()
        for mi in self.model.methods.values():
            for b in mi.blocking:
                lockset = set(b.lockset)
                if b.desc in self._RELEASES_OWN and b.receiver in lockset:
                    lockset.discard(b.receiver)  # releases its own first
                if not lockset:
                    continue
                self._emit_r017(mi.qualname, b.file, b.line, b.col,
                                b.desc, frozenset(lockset), [])
            for call in mi.calls:
                if not call.lockset or call.callee not in blocked:
                    continue
                desc, bfile, bline, recv, releases = blocked[call.callee]
                lockset = set(call.lockset)
                if releases and recv in lockset:
                    lockset.discard(recv)
                if not lockset:
                    continue
                extra = [(call.line,
                          f"{bfile}:{bline} {call.callee} reaches "
                          f"blocking {desc}")]
                self._emit_r017(mi.qualname, call.file, call.line, 0,
                                f"{call.callee}() → {desc}",
                                frozenset(lockset), extra)

    def _emit_r017(self, method: str, file: str, line: int, col: int,
                   desc: str, lockset: frozenset[str],
                   extra: list[tuple[int, str]]) -> None:
        roles = sorted(self.roles.of(method)) or ["unreached"]
        witness = self._role_steps(method, roles[0], file, line)
        witness.append((line, f"{file}:{line} {method} blocks in {desc} "
                              f"holding {_fmt_locks(lockset)}"))
        witness.extend(extra)
        self.findings.append(ThreadFinding(
            "R017", self._path_of(file), line, col,
            f"{method} (role {roles[0]!r}) makes blocking call {desc} "
            f"while holding {_fmt_locks(lockset)} — a slow or stuck "
            f"wait stalls every thread contending for the lock",
            tuple(witness)))

    # -- R018 -------------------------------------------------------------

    def _check_r018(self) -> None:
        consumed_anywhere: set[str] = set()
        escaped_anywhere: set[str] = set()
        for mi in self.model.methods.values():
            consumed_anywhere |= mi.consumed_roots
            escaped_anywhere |= mi.escaped_roots
        for mi in self.model.methods.values():
            for spawn in mi.spawns:
                if spawn.kind == "callback":
                    continue   # a callback is itself the consumption
                root = spawn.root
                if root is None:
                    consumed = False
                elif "." in root:   # class-attribute root: any method
                    consumed = root in consumed_anywhere or \
                        root in escaped_anywhere
                else:               # local root: this method only
                    consumed = root in mi.consumed_roots or \
                        root in mi.escaped_roots
                if consumed:
                    continue
                noun = "thread" if spawn.kind == "thread" else "future"
                where = f"stored in {root}" if root else "handle dropped"
                roles = sorted(self.roles.of(spawn.method)) or \
                    ["unreached"]
                witness = self._role_steps(spawn.method, roles[0],
                                           spawn.file, spawn.line)
                witness.append((
                    spawn.line,
                    f"{spawn.file}:{spawn.line} {spawn.method} spawns "
                    f"{noun} (role {spawn.role!r}), {where}; no join/"
                    f"result/callback consumes it on any path"))
                self.findings.append(ThreadFinding(
                    "R018", self._path_of(spawn.file), spawn.line,
                    spawn.col,
                    f"{noun} spawned in {spawn.method} as role "
                    f"{spawn.role!r} is never joined or consumed "
                    f"({where}) — shutdown can strand it and its "
                    f"errors are silently dropped",
                    tuple(witness)))

    # -- R019 -------------------------------------------------------------

    def _check_r019(self) -> None:
        for mi in self.model.methods.values():
            for cta in mi.check_then_act:
                key = (cta["cls"], cta["attr"])
                roles = self._shared_attrs.get(key)
                if roles is None:
                    continue
                inh = self._inherited.get(mi.qualname, frozenset())
                if (cta["test_lockset"] | inh) & \
                        (cta["write_lockset"] | inh):
                    continue
                mroles = sorted(self.roles.of(mi.qualname)) or \
                    ["unreached"]
                witness = self._role_steps(mi.qualname, mroles[0],
                                           cta["file"], cta["line"])
                witness.append((
                    cta["test_line"],
                    f"{cta['file']}:{cta['test_line']} branch test reads "
                    f"{key[0]}.{key[1]} holding "
                    f"{_fmt_locks(cta['test_lockset'])}"))
                witness.append((
                    cta["write_line"],
                    f"{cta['file']}:{cta['write_line']} governed write to "
                    f"{key[0]}.{key[1]} holding "
                    f"{_fmt_locks(cta['write_lockset'])} — another role "
                    f"can interleave between test and write"))
                self.findings.append(ThreadFinding(
                    "R019", self._path_of(cta["file"]), cta["line"],
                    cta["col"],
                    f"non-atomic check-then-act on {key[0]}.{key[1]} in "
                    f"{mi.qualname} (role {mroles[0]!r}; attribute is "
                    f"shared by roles {sorted(roles)}): the test and the "
                    f"write hold no common lock",
                    tuple(witness)))

    # -- R020 -------------------------------------------------------------

    def _check_r020(self) -> None:
        entries = entry_methods(self.model)
        for mi in self.model.methods.values():
            wrapped = self._caller_loops(mi.qualname) and \
                mi.qualname not in entries
            for line, col, in_while, receiver in mi.cond_waits:
                if in_while or wrapped:
                    continue
                roles = sorted(self.roles.of(mi.qualname)) or \
                    ["unreached"]
                witness = self._role_steps(mi.qualname, roles[0],
                                           mi.file, line)
                witness.append((
                    line,
                    f"{mi.file}:{line} {mi.qualname} calls "
                    f"{receiver}.wait() with no enclosing while loop"))
                self.findings.append(ThreadFinding(
                    "R020", self._path_of(mi.file), line, col,
                    f"Condition.wait on {receiver} in {mi.qualname} "
                    f"(role {roles[0]!r}) is outside a predicate loop — "
                    f"spurious or stale wakeups proceed on a false "
                    f"predicate; use `while not pred: cond.wait()`",
                    tuple(witness)))

    def _caller_loops(self, method: str) -> bool:
        """True when *method* is a wait wrapper: every package-internal
        call to it sits inside a ``while``, so the predicate re-check
        the bare ``Condition.wait`` needs lives at the call sites
        (``acquire_read``'s ``while conflict: self._wait(...)``)."""
        sites = [call
                 for mi in self.model.methods.values()
                 for call in mi.calls if call.callee == method]
        return bool(sites) and all(call.in_while for call in sites)

    # -- plumbing ----------------------------------------------------------

    def _path_of(self, basename: str) -> Path:
        for path in self.model.files:
            if path.name == basename:
                return path
        return self.model.directory / basename


def analysis_for_path(path: Path) -> ThreadAnalysis:
    """The (package-cached) thread analysis covering *path*."""
    model = package_model(path)
    cached = getattr(model, _CACHE_ATTR, None)
    if not isinstance(cached, ThreadAnalysis):
        cached = ThreadAnalysis(model)
        setattr(model, _CACHE_ATTR, cached)
    return cached
