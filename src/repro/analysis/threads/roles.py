"""Thread-role inference over a :class:`~.model.PackageModel`.

A **thread role** names the kind of thread that can be executing a
method: ``shard-worker`` for anything reachable from a
``threading.Thread(target=…, name="shard-worker-…")`` run loop,
``shard-rec`` for an executor's submitted functions, ``callback`` for
``Future.add_done_callback`` targets, and ``caller`` for everything the
package's public API exposes to whatever thread the application calls
in on.  Two accesses to the same attribute matter to the lockset rules
exactly when their role sets differ — same-role accesses are serialized
by the thread itself.

Inference is a BFS from the entry points over the *call* edges the
model resolved (spawn edges start new roles, they do not propagate the
spawner's).  For every ``(method, role)`` pair the walk records the
edge it arrived by, so each finding can print a concrete witness chain
from the spawn/API entry down to the access.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .model import MethodInfo, PackageModel

__all__ = ["RoleMap", "infer_roles", "entry_methods"]

#: role of a public-API entry: whatever thread the application calls in on
CALLER = "caller"


@dataclass(frozen=True)
class _Entry:
    method: str
    role: str
    file: str
    line: int
    note: str


class RoleMap:
    """roles per method, plus the witness chain for each (method, role)."""

    def __init__(self) -> None:
        self.roles: dict[str, set[str]] = {}
        #: (method, role) -> (parent_method | None, file, line, note)
        self._edges: dict[tuple[str, str], tuple[str | None, str, int,
                                                 str]] = {}

    def of(self, method: str) -> set[str]:
        return self.roles.get(method, set())

    def add(self, method: str, role: str, parent: str | None,
            file: str, line: int, note: str) -> bool:
        """Record method∈role (arrived via *parent*); True if new."""
        seen = self.roles.setdefault(method, set())
        if role in seen:
            return False
        seen.add(role)
        self._edges[(method, role)] = (parent, file, line, note)
        return True

    def chain(self, method: str, role: str,
              limit: int = 6) -> list[tuple[str, int, str]]:
        """The witness chain entry → … → *method* for one role, as
        ``(file, line, note)`` steps in execution order."""
        steps: list[tuple[str, int, str]] = []
        cursor: str | None = method
        while cursor is not None and len(steps) < limit:
            edge = self._edges.get((cursor, role))
            if edge is None:
                break
            parent, file, line, note = edge
            steps.append((file, line, note))
            cursor = parent
        steps.reverse()
        return steps


def infer_roles(model: PackageModel) -> RoleMap:
    roles = RoleMap()
    queue: deque[tuple[str, str]] = deque()

    def seed(entry: _Entry) -> None:
        if entry.method in model.methods and \
                roles.add(entry.method, entry.role, None,
                          entry.file, entry.line, entry.note):
            queue.append((entry.method, entry.role))

    for entry in _entries(model):
        seed(entry)

    while queue:
        method, role = queue.popleft()
        mi = model.methods.get(method)
        if mi is None:
            continue
        for call in mi.calls:
            note = (f"{call.file}:{call.line} {method} calls "
                    f"{call.callee} on the {role!r} thread")
            if roles.add(call.callee, role, method, call.file,
                         call.line, note):
                queue.append((call.callee, role))
    return roles


def _entries(model: PackageModel):
    # 1. spawn targets: each spawn names the role its new thread runs
    for mi in model.methods.values():
        for spawn in mi.spawns:
            if spawn.target is None:
                continue
            what = {"thread": "Thread(target=…)",
                    "future": "executor.submit(…)",
                    "callback": "Future.add_done_callback(…)"}[spawn.kind]
            yield _Entry(
                spawn.target, spawn.role, spawn.file, spawn.line,
                f"{spawn.file}:{spawn.line} {spawn.method} spawns "
                f"{spawn.target} via {what} as role {spawn.role!r}")
    # 2. the public API: every public method/function is a caller entry
    for mi in model.methods.values():
        if _is_public_entry(mi):
            kind = "method" if mi.cls else "function"
            yield _Entry(
                mi.qualname, CALLER, mi.file, mi.line,
                f"{mi.file}:{mi.line} public {kind} {mi.qualname} "
                f"runs on the application (caller) thread")


def entry_methods(model: PackageModel) -> set[str]:
    """The methods control can enter from outside the package's own
    call graph — spawn targets and public API.  These anchor the
    inherited-lockset fixpoint: an entry can always be invoked with no
    package lock held, so it inherits nothing."""
    return {entry.method for entry in _entries(model)}


def _is_public_entry(mi: MethodInfo) -> bool:
    name = mi.name
    if mi.cls is not None and mi.cls.startswith("_"):
        # private classes are built by the package's own public API, so
        # their construction runs in whatever role constructs them —
        # but __init__ still publishes, so keep it as a caller entry
        return name == "__init__"
    if name.startswith("__") and name.endswith("__"):
        return True
    return not name.startswith("_")
