"""Thread-topology analyzer: whole-package role/lockset lint (R016–R020).

Models a directory of Python files as a thread topology — who spawns
whom, which role runs each method, what blocks, what locks what — and
checks the shard/heal concurrency layer's discipline statically.  See
:mod:`.model` for the fact extraction, :mod:`.roles` for role
inference, :mod:`.engine` for the verdicts and :mod:`.rules` for the
lint-registry integration.
"""

from .engine import ThreadAnalysis, analysis_for_path
from .model import PackageModel, package_model
from .roles import RoleMap, infer_roles
from .rules import threads_rules

__all__ = [
    "ThreadAnalysis",
    "analysis_for_path",
    "PackageModel",
    "package_model",
    "RoleMap",
    "infer_roles",
    "threads_rules",
]
