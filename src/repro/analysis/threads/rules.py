"""R016–R020 — the thread-topology rules.

All five rules share one :class:`~.engine.ThreadAnalysis` per package
(cached on the package model, which is cached per directory), so running
the full thread catalogue over a directory costs one model build and one
analysis pass.  Each rule filters the package-wide findings down to the
file under lint and attaches the witness path — spawn/API entry, call
chain, conflicting sites — to the emitted Violation.

========  ==================================================================
rule      discipline
========  ==================================================================
R016      a shared mutable attribute is accessed from ≥ 2 thread roles
          with no lock common to every access
R017      a blocking call (queue get, join, future result, event/
          condition wait, sleep, simulated I/O) runs while holding a
          lock, directly or through package-local calls
R018      a thread or future is created but never joined/consumed on
          any path — errors vanish and shutdown can strand it
R019      non-atomic check-then-act: a branch tests a shared attribute
          and its body writes it with no common lock
R020      ``Condition.wait`` outside a ``while`` predicate loop
========  ==================================================================
"""

from __future__ import annotations

from typing import ClassVar, Iterator

from ..lint import FileContext, Rule, Violation
from .engine import ThreadAnalysis, analysis_for_path

__all__ = [
    "ThreadRule",
    "InconsistentLocksetRule",
    "BlockingUnderLockRule",
    "UnjoinedThreadRule",
    "CheckThenActRule",
    "ConditionWaitLoopRule",
    "threads_rules",
]


class ThreadRule(Rule):
    """Base for the thread rules: filter the package analysis findings
    by rule id and by the file under lint."""

    rule_id: ClassVar[str] = "R000"
    summary: ClassVar[str] = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        analysis: ThreadAnalysis = analysis_for_path(ctx.path)
        here = ctx.path.resolve()
        for finding in analysis.findings:
            if finding.rule_id != self.rule_id or finding.path != here:
                continue
            yield Violation(
                rule_id=self.rule_id,
                path=ctx.rel_path,
                line=finding.line,
                col=finding.col + 1,
                message=finding.message,
                witness=finding.witness,
            )


class InconsistentLocksetRule(ThreadRule):
    rule_id = "R016"
    summary = "shared attribute accessed from ≥2 thread roles with " \
              "inconsistent locksets"


class BlockingUnderLockRule(ThreadRule):
    rule_id = "R017"
    summary = "blocking call (get/join/result/wait/simulated I/O) " \
              "while holding a lock"


class UnjoinedThreadRule(ThreadRule):
    rule_id = "R018"
    summary = "thread/future created but never joined or consumed"


class CheckThenActRule(ThreadRule):
    rule_id = "R019"
    summary = "non-atomic check-then-act on a shared dict/list/attribute"


class ConditionWaitLoopRule(ThreadRule):
    rule_id = "R020"
    summary = "Condition.wait outside a while predicate loop"


def threads_rules() -> list[Rule]:
    """One instance of every thread rule, in rule-id order."""
    return [
        InconsistentLocksetRule(),
        BlockingUnderLockRule(),
        UnjoinedThreadRule(),
        CheckThenActRule(),
        ConditionWaitLoopRule(),
    ]
