"""Whole-package concurrency model for the thread-topology analyzer.

The pattern rules (R001–R010) and flow rules (R011–R015) are per-file and
per-function; the thread rules need to see *across* the files of one
package, because the thing they check — which thread touches which
attribute under which lock — is a property of the module topology:
``ShardWorkerPool`` spawns the owner threads in ``workers.py`` but the
state they mutate lives in ``heal.py`` and ``scheduler.py``.

:class:`PackageModel` therefore parses every ``.py`` sibling of the file
under lint (one parse per directory, cached by content signature) and
extracts the facts the role/lockset analysis consumes:

* **classes and their attributes** — every name a class declares via
  ``self.x = …``, ``self.x: T``, class-level assignment or ``__slots__``;
* **a small type lattice** — package classes plus the concurrency
  primitives (``Thread``/``Queue``/``Event``/``Lock``/``Condition``/
  ``Future``/``Executor``), inferred from annotations, constructor
  calls, container element types and ``for``-loop/``with`` targets;
* **per-method attribute accesses** with the lexical **lockset** held at
  each access (``with lock:`` nesting; lock identities normalized so
  ``self._locks[i]`` and ``self._locks[j]`` are one per-shard family);
* **call edges** resolved through receiver types, with a guarded
  unique-method-name fallback for untyped handles (``self.heal.step``);
* **spawn sites** — ``threading.Thread(target=…)``, ``executor.submit``,
  ``Future.add_done_callback`` — with the thread-role name each implies
  and the storage root its handle lands in (for the R018 join check);
* **blocking calls** (typed ``Queue.get`` / ``Thread.join`` /
  ``Future.result`` / ``Event.wait`` / ``Condition.wait``, ``sleep``,
  simulated I/O) with the lockset held around them.

Everything here is *facts*; the verdicts live in
:mod:`repro.analysis.threads.engine`.
"""

from __future__ import annotations

import ast
import dataclasses
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Type",
    "AttrAccess",
    "BlockingCall",
    "CallSite",
    "SpawnSite",
    "PrimitiveOp",
    "MethodInfo",
    "ClassInfo",
    "PackageModel",
    "package_model",
]


# ---------------------------------------------------------------------------
# the tiny type lattice
# ---------------------------------------------------------------------------

#: external types the analyzer knows how to classify
_PRIMS = ("Thread", "Queue", "Event", "Lock", "Condition", "Future",
          "Executor")

#: constructor spellings -> primitive type
_CTOR_TYPES = {
    "Thread": "Thread",
    "Queue": "Queue",
    "LifoQueue": "Queue",
    "PriorityQueue": "Queue",
    "SimpleQueue": "Queue",
    "Event": "Event",
    "Lock": "Lock",
    "RLock": "Lock",
    "Semaphore": "Lock",
    "BoundedSemaphore": "Lock",
    "Condition": "Condition",
    "ThreadPoolExecutor": "Executor",
    "ProcessPoolExecutor": "Executor",
}

#: method names too generic for the unique-name call-graph fallback —
#: resolving `x.get()` to some package class's `get` would be guessing
_COMMON_METHODS = frozenset({
    "get", "put", "set", "wait", "join", "result", "start", "run",
    "append", "extend", "pop", "update", "clear", "remove", "discard",
    "add", "items", "values", "keys", "sort", "copy", "close", "open",
    "read", "write", "encode", "decode", "check", "sync", "insert",
    "delete", "lookup", "emit", "inc", "observe", "step", "submit",
    "done", "error", "send", "shutdown", "acquire", "release",
})

#: container mutators — a call like `self.d.pop(k)` writes the container
_CONTAINER_MUTATORS = frozenset({
    "append", "extend", "insert", "pop", "popitem", "remove", "discard",
    "clear", "update", "setdefault", "add",
})

#: callee names treated as (simulated) blocking I/O regardless of type
_IO_BLOCKING = frozenset({"sleep", "sync", "fsync"})

#: base names assumed to be Event handles when the receiver is untyped —
#: lets `done.set()` on an Event unpacked from a queue-item tuple keep
#: its handoff identity (paired with the typed `done.wait()` source side)
_EVENTISH_NAMES = frozenset({"done", "event", "ev", "ready", "finished"})


@dataclass(frozen=True)
class Type:
    """A resolved type: a package class name or one of the primitive
    concurrency types, optionally a container with an element type."""

    name: str
    elem: "Type | None" = None   # list/set elements, dict *values*

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name}[{self.elem}]" if self.elem else self.name


# ---------------------------------------------------------------------------
# extracted facts
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AttrAccess:
    """One read/write of a package-class attribute inside one method."""

    cls: str                 # owning class of the attribute
    attr: str
    kind: str                # "read" | "write"
    method: str              # qualname of the accessing method
    file: str                # basename of the file the access is in
    line: int
    col: int
    lockset: frozenset[str]  # normalized lock names lexically held
    in_init: bool            # write inside the owning class's __init__


@dataclass(frozen=True)
class BlockingCall:
    """A call that may block the current thread."""

    method: str
    file: str
    line: int
    col: int
    desc: str                # e.g. "Queue.get()" / "Thread.join()"
    lockset: frozenset[str]
    receiver: str | None     # normalized receiver, for the Condition
                             # self-lock exemption


@dataclass(frozen=True)
class CallSite:
    """One resolved package-internal call edge."""

    caller: str              # qualname
    callee: str              # qualname
    file: str
    line: int
    lockset: frozenset[str] = frozenset()   # locks held at the call
    in_while: bool = False   # lexically inside a while loop (R020)


@dataclass(frozen=True)
class SpawnSite:
    """A thread/future creation point."""

    kind: str                # "thread" | "future" | "callback"
    method: str              # qualname of the spawning method
    file: str
    line: int
    col: int
    target: str | None       # resolved qualname the new thread runs
    role: str                # thread-role name the spawn implies
    root: str | None         # where the handle is stored (None = dropped)
    escapes: bool            # handle passed to an unresolved call


@dataclass(frozen=True)
class PrimitiveOp:
    """A happens-before relevant primitive operation (put/get/set/wait/
    start/join/submit/result), keyed so matching ends pair up."""

    kind: str                # "put"|"get"|"set"|"wait"|"start"|"join"|
                             # "submit"|"result"
    key: str                 # normalized identity of the primitive
    method: str
    file: str
    line: int


@dataclass
class MethodInfo:
    """Everything the analysis knows about one function/method."""

    qualname: str
    cls: str | None
    name: str
    file: str                # basename
    path: Path               # resolved absolute path
    line: int
    node: ast.AST = field(repr=False, default=None)
    accesses: list[AttrAccess] = field(default_factory=list)
    blocking: list[BlockingCall] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    spawns: list[SpawnSite] = field(default_factory=list)
    prim_ops: list[PrimitiveOp] = field(default_factory=list)
    consumed_roots: set[str] = field(default_factory=set)
    escaped_roots: set[str] = field(default_factory=set)
    instantiates: set[str] = field(default_factory=set)  # package classes
    cond_waits: list[tuple[int, int, bool, str]] = field(
        default_factory=list)  # (line, col, in_while, receiver)
    check_then_act: list[dict] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One package class: declared attributes, their types, methods."""

    name: str
    file: str
    line: int
    attrs: set[str] = field(default_factory=set)
    attr_types: dict[str, Type] = field(default_factory=dict)
    methods: dict[str, MethodInfo] = field(default_factory=dict)
    #: attr -> canonical attr for the same underlying lock:
    #: `self._cond = Condition(self._mutex)` makes _mutex and _cond one
    #: lock, so locksets must not treat them as two
    lock_aliases: dict[str, str] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# model construction
# ---------------------------------------------------------------------------

class PackageModel:
    """The merged model of every parseable ``.py`` file in one directory."""

    def __init__(self, directory: Path):
        self.directory = directory
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, MethodInfo] = {}   # module-level defs
        self.methods: dict[str, MethodInfo] = {}     # every qualname
        self.files: list[Path] = []
        self._method_name_index: dict[str, list[str]] = {}
        self._modules: list[tuple[Path, ast.Module]] = []
        self._load()
        self._index_declarations()
        self._extract_facts()
        self.hb_edges = self._happens_before()
        self._engine_cache: dict | None = None  # set by engine.py

    # -- phase 0: parse every sibling -----------------------------------

    def _load(self) -> None:
        for path in sorted(self.directory.glob("*.py")):
            try:
                source = path.read_text()
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError, ValueError):
                continue   # a broken sibling must not kill the analysis
            self.files.append(path.resolve())
            self._modules.append((path.resolve(), tree))

    # -- phase 1: classes, attributes, method index ---------------------

    def _index_declarations(self) -> None:
        for path, tree in self._modules:
            base = path.name
            for node in tree.body:
                if isinstance(node, ast.ClassDef):
                    info = self.classes.setdefault(
                        node.name, ClassInfo(node.name, base, node.lineno))
                    self._index_class(info, node, path, base)
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    mi = MethodInfo(node.name, None, node.name, base, path,
                                    node.lineno, node)
                    self.functions[node.name] = mi
                    self.methods[node.name] = mi
        for qual, mi in self.methods.items():
            self._method_name_index.setdefault(mi.name, []).append(qual)

    def _index_class(self, info: ClassInfo, node: ast.ClassDef,
                     path: Path, base: str) -> None:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if target.id == "__slots__":
                            info.attrs |= _slot_names(stmt.value)
                        else:
                            info.attrs.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                info.attrs.add(stmt.target.id)
                t = parse_annotation(stmt.annotation)
                if t is not None:
                    info.attr_types.setdefault(stmt.target.id, t)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{info.name}.{stmt.name}"
                mi = MethodInfo(qual, info.name, stmt.name, base, path,
                                stmt.lineno, stmt)
                info.methods[stmt.name] = mi
                self.methods[qual] = mi
                self._scan_self_attrs(info, stmt)

    def _scan_self_attrs(self, info: ClassInfo, fn: ast.AST) -> None:
        """Collect `self.x = …` / `self.x: T = …` declarations (and any
        constructor-call types they pin down)."""
        for node in ast.walk(fn):
            targets: list[tuple[ast.expr, ast.expr | None,
                                ast.expr | None]] = []
            if isinstance(node, ast.Assign):
                targets = [(t, None, node.value) for t in node.targets]
            elif isinstance(node, ast.AnnAssign):
                targets = [(node.target, node.annotation, node.value)]
            for target, annotation, value in targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                info.attrs.add(target.attr)
                t = parse_annotation(annotation) if annotation is not None \
                    else self._literal_type(value)
                if t is not None:
                    info.attr_types.setdefault(target.attr, t)
                if isinstance(value, ast.Call) and \
                        _ctor_name(value) == "Condition" and value.args:
                    arg = value.args[0]
                    if isinstance(arg, ast.Attribute) and \
                            isinstance(arg.value, ast.Name) and \
                            arg.value.id == "self":
                        info.lock_aliases[arg.attr] = target.attr

    def _literal_type(self, value: ast.expr | None) -> Type | None:
        """Type of an initializer expression that needs no local env:
        constructor calls and comprehensions over them."""
        if value is None:
            return None
        if isinstance(value, ast.Call):
            name = _ctor_name(value)
            if name in _CTOR_TYPES:
                return Type(_CTOR_TYPES[name])
            if name in self.classes:
                return Type(name)
        if isinstance(value, (ast.ListComp, ast.SetComp)):
            elem = self._literal_type(value.elt)
            if elem is not None:
                return Type("list", elem)
        if isinstance(value, ast.DictComp):
            elem = self._literal_type(value.value)
            if elem is not None:
                return Type("dict", elem)
        if isinstance(value, (ast.List, ast.Set)) and value.elts:
            elem = self._literal_type(value.elts[0])
            if elem is not None:
                return Type("list", elem)
        return None

    # -- phase 2: per-method facts --------------------------------------

    def _extract_facts(self) -> None:
        for mi in self.methods.values():
            _MethodScanner(self, mi).scan()

    # -- phase 3: happens-before edges ----------------------------------

    def _happens_before(self) -> list[dict]:
        """Pair the source/sink halves of each handoff primitive: a
        ``put`` happens-before the ``get`` on the same queue family,
        ``set`` before ``wait``, ``start``/``submit`` before ``join``/
        ``result``.  Matching is by normalized primitive identity with a
        base-name fallback (handles that cross methods through an
        untyped payload, like the worker queue's Event tuples)."""
        _PAIRS = (("put", "get"), ("set", "wait"), ("start", "join"),
                  ("submit", "result"))
        ops: list[PrimitiveOp] = []
        for mi in self.methods.values():
            ops.extend(mi.prim_ops)
        edges: list[dict] = []
        for src_kind, dst_kind in _PAIRS:
            sources = [op for op in ops if op.kind == src_kind]
            sinks = [op for op in ops if op.kind == dst_kind]
            for src in sources:
                for dst in sinks:
                    if _keys_match(src.key, dst.key):
                        edges.append({
                            "kind": f"{src_kind}->{dst_kind}",
                            "key": src.key,
                            "src": (src.method, src.file, src.line),
                            "dst": (dst.method, dst.file, dst.line),
                        })
        # spawn completion: everything the spawned target did happens
        # before the join/result over its handle returns — this is the
        # edge that orders a worker's report-field writes before the
        # caller's post-join reads (start->join / submit->result above
        # only order the *launch* before the wait)
        consumers = [op for op in ops if op.kind in ("join", "result")]
        for mi in self.methods.values():
            for spawn in mi.spawns:
                if spawn.target is None or spawn.root is None:
                    continue
                want = "join" if spawn.kind == "thread" else "result"
                for op in consumers:
                    if op.kind == want and _root_of(op.key) == spawn.root:
                        edges.append({
                            "kind": f"{spawn.kind}-completion",
                            "key": spawn.root,
                            "src": (spawn.target, spawn.file, spawn.line),
                            "dst": (op.method, op.file, op.line),
                        })
        return edges

    # -- resolution helpers ---------------------------------------------

    def resolve_method(self, cls: str | None, name: str) -> str | None:
        """``cls.name`` if declared there; None otherwise."""
        if cls is not None and cls in self.classes and \
                name in self.classes[cls].methods:
            return f"{cls}.{name}"
        return None

    def resolve_unique(self, name: str) -> str | None:
        """The guarded unique-name fallback: resolve *name* only when
        exactly one package class declares it and the name is not a
        generic container/primitive method."""
        if name in _COMMON_METHODS:
            return None
        candidates = self._method_name_index.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def canonical_lock(self, origin: str | None) -> str | None:
        """Fold lock aliases: ``Cls._mutex`` -> ``Cls._cond`` when the
        class built its Condition around that mutex."""
        if origin is None or "." not in origin:
            return origin
        cls, _, attr = origin.partition(".")
        info = self.classes.get(cls)
        if info is not None:
            alias = info.lock_aliases.get(attr.split("[")[0])
            if alias is not None:
                return f"{cls}.{alias}"
        return origin

    def attr_declared(self, cls: str, attr: str) -> bool:
        info = self.classes.get(cls)
        return info is not None and attr in info.attrs

    def attr_type(self, cls: str, attr: str) -> Type | None:
        info = self.classes.get(cls)
        return info.attr_types.get(attr) if info else None


def _keys_match(a: str, b: str) -> bool:
    """Primitive identity match: exact normalized key, or equal base
    name when a handle crosses methods untyped (`done` in run_batch vs
    the unpacked `done` in _worker_loop)."""
    if a == b:
        return True
    return _base_name(a) == _base_name(b)


def _base_name(key: str) -> str:
    tail = key.split(".")[-1]
    return tail.split("[")[0]


def _slot_names(value: ast.expr) -> set[str]:
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        return {e.value for e in value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)}
    return set()


def _ctor_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def parse_annotation(node: ast.expr | None) -> Type | None:
    """A best-effort reading of a type annotation into the lattice."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        if node.id in _CTOR_TYPES:
            return Type(_CTOR_TYPES[node.id])
        return Type(node.id)
    if isinstance(node, ast.Attribute):
        if node.attr in _CTOR_TYPES:
            return Type(_CTOR_TYPES[node.attr])
        return Type(node.attr)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = parse_annotation(node.left)
        if left is not None and left.name != "None":
            return left
        return parse_annotation(node.right)
    if isinstance(node, ast.Subscript):
        head = parse_annotation(node.value)
        if head is None:
            return None
        args = node.slice.elts if isinstance(node.slice, ast.Tuple) \
            else [node.slice]
        if head.name == "Optional" and args:
            return parse_annotation(args[0])
        if head.name in ("list", "List", "set", "Set", "frozenset",
                         "tuple", "Tuple", "Sequence", "Iterable",
                         "Iterator") and args:
            return Type("list", parse_annotation(args[0]))
        if head.name in ("dict", "Dict", "Mapping", "MutableMapping") \
                and len(args) == 2:
            return Type("dict", parse_annotation(args[1]))
        return head
    return None


# ---------------------------------------------------------------------------
# the per-method scanner
# ---------------------------------------------------------------------------

class _MethodScanner:
    """One walk over a method body collecting accesses, locksets, calls,
    spawns, blocking calls and primitive handoff operations."""

    def __init__(self, model: PackageModel, mi: MethodInfo):
        self.model = model
        self.mi = mi
        self.env: dict[str, Type] = {}
        #: local name -> normalized origin of the value (for lock/queue
        #: identity and R018 root tracking)
        self.origin: dict[str, str] = {}
        #: local name -> method qualnames it aliases
        #: (`recover_one = self._admit_one if fast else self._recover_one`)
        self.fn_aliases: dict[str, list[str]] = {}
        self.locks: list[str] = []
        self.while_depth = 0
        if mi.cls is not None:
            self.env["self"] = Type(mi.cls)
        self._seed_params()

    # -- environment -----------------------------------------------------

    def _seed_params(self) -> None:
        node = self.mi.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        args = list(node.args.posonlyargs) + list(node.args.args) + \
            list(node.args.kwonlyargs)
        for arg in args:
            t = parse_annotation(arg.annotation)
            if t is not None and (t.name in self.model.classes
                                  or t.name in _PRIMS
                                  or t.elem is not None):
                self.env[arg.arg] = t
            # untyped lock-ish params still carry identity by name
            if t is None and _lockish_name(arg.arg):
                self.env[arg.arg] = Type("Lock")
                self.origin[arg.arg] = arg.arg

    def expr_type(self, node: ast.expr | None) -> Type | None:
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            recv = self.expr_type(node.value)
            if recv is not None:
                return self.model.attr_type(recv.name, node.attr)
            return None
        if isinstance(node, ast.Subscript):
            container = self.expr_type(node.value)
            if container is not None and container.elem is not None:
                return container.elem
            return None
        if isinstance(node, ast.Call):
            return self._call_type(node)
        if isinstance(node, ast.IfExp):
            return self.expr_type(node.body) or self.expr_type(node.orelse)
        if isinstance(node, ast.Await):
            return self.expr_type(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp)):
            elem = self.expr_type(node.elt)
            if elem is not None:
                return Type("list", elem)
        if isinstance(node, ast.DictComp):
            elem = self.expr_type(node.value)
            if elem is not None:
                return Type("dict", elem)
        return self.model._literal_type(node)

    def _call_type(self, call: ast.Call) -> Type | None:
        name = _ctor_name(call)
        if name in _CTOR_TYPES:
            return Type(_CTOR_TYPES[name])
        if name in self.model.classes:
            return Type(name)
        func = call.func
        if isinstance(func, ast.Attribute):
            recv = self.expr_type(func.value)
            if recv is not None:
                if func.attr == "submit" and recv.name == "Executor":
                    return Type("Future")
                if recv.name == "dict" and func.attr in ("get", "pop",
                                                         "setdefault"):
                    return recv.elem
                if func.attr == "values" and recv.name == "dict":
                    return Type("list", recv.elem)
                if func.attr == "copy":
                    return recv
        return None

    def expr_origin(self, node: ast.expr) -> str | None:
        """Normalized identity of an expression: ``Cls.attr`` for
        ``self.attr``, ``Cls.attr[·]`` for its elements, the bare name
        for locals (with origin chasing), None for anything else."""
        if isinstance(node, ast.Name):
            return self.origin.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self" \
                    and self.mi.cls is not None:
                return f"{self.mi.cls}.{node.attr}"
            base = self.expr_origin(node.value)
            return f"{base}.{node.attr}" if base else None
        if isinstance(node, ast.Subscript):
            base = self.expr_origin(node.value)
            return f"{base}[·]" if base else None
        if isinstance(node, ast.Call) and isinstance(node.func,
                                                     ast.Attribute) \
                and node.func.attr in ("items", "values", "keys", "copy"):
            return self.expr_origin(node.func.value)
        return None

    # -- the walk --------------------------------------------------------

    def scan(self) -> None:
        node = self.mi.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        for stmt in node.body:
            self._visit(stmt)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            return      # nested scopes are their own methods' problem
        handler = getattr(self, f"_visit_{type(node).__name__}", None)
        if handler is not None:
            handler(node)
            return
        self._generic(node)

    def _generic(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._handle_call(node)
        elif isinstance(node, ast.Attribute):
            self._handle_attribute(node)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            self._bind_comprehension(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    # -- statements that shape the environment ---------------------------

    def _visit_Assign(self, node: ast.Assign) -> None:
        before = len(self.mi.spawns)
        self._visit(node.value)
        t = self.expr_type(node.value)
        origin = self.expr_origin(node.value)
        for target in node.targets:
            self._bind_target(target, t, origin, node.value)
            self._visit_store_target(target)
        self._patch_spawn_roots(before, node.targets)

    def _visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        before = len(self.mi.spawns)
        if node.value is not None:
            self._visit(node.value)
        t = parse_annotation(node.annotation) or \
            (self.expr_type(node.value) if node.value else None)
        origin = self.expr_origin(node.value) if node.value else None
        self._bind_target(node.target, t, origin,
                          node.value if node.value is not None else None)
        self._visit_store_target(node.target)
        self._patch_spawn_roots(before, [node.target])

    def _patch_spawn_roots(self, before: int, targets: list) -> None:
        """A spawn whose handle lands in an assignment target is rooted
        there; unassigned spawns keep root=None (dropped handle)."""
        if len(self.mi.spawns) <= before:
            return
        root: str | None = None
        for target in targets:
            if isinstance(target, (ast.Name, ast.Attribute, ast.Subscript)):
                got = self.expr_origin(target)
                if got is not None:
                    root = _root_of(got)
                    break
        if root is None:
            return
        for i in range(before, len(self.mi.spawns)):
            if self.mi.spawns[i].root is None:
                self.mi.spawns[i] = dataclasses.replace(
                    self.mi.spawns[i], root=root)

    def _visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._visit(node.value)
        target = node.target
        if isinstance(target, ast.Attribute):
            self._record_attr(target, "write")
            self._record_attr(target, "read")
        elif isinstance(target, ast.Subscript):
            self._visit_store_target(target)

    def _visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._visit_store_target(target)

    def _visit_For(self, node: ast.For) -> None:
        self._visit(node.iter)
        t = self._iter_elem_type(node.iter)
        origin = self.expr_origin(node.iter)
        self._bind_target(node.target, t, f"{origin}[·]" if origin else None,
                          None)
        for stmt in node.body:
            self._visit(stmt)
        for stmt in node.orelse:
            self._visit(stmt)

    def _iter_elem_type(self, it: ast.expr) -> Type | None:
        t = self.expr_type(it)
        if t is not None and t.elem is not None:
            return t.elem
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute):
            recv = self.expr_type(it.func.value)
            if recv is not None and recv.name == "dict":
                if it.func.attr == "values":
                    return recv.elem
                if it.func.attr == "items":
                    return Type("tuple2", recv.elem)
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Name):
            if it.func.id in ("sorted", "list", "tuple", "reversed") \
                    and it.args:
                return self._iter_elem_type(it.args[0])
            if it.func.id == "enumerate" and it.args:
                return Type("tuple2", self._iter_elem_type(it.args[0]))
        return None

    def _bind_target(self, target: ast.expr, t: Type | None,
                     origin: str | None, value: ast.expr | None) -> None:
        if isinstance(target, ast.Name):
            if t is not None:
                self.env[target.id] = t
            elif _lockish_name(target.id) and target.id not in self.env:
                self.env[target.id] = Type("Lock")
            if t is not None and t.name == "Executor" and \
                    isinstance(value, ast.Call):
                prefix = _const_prefix(self._kwarg(
                    value, "thread_name_prefix"))
                origin = f"executor:{prefix or 'executor'}"
            if origin is not None:
                self.origin[target.id] = origin
            if t is None and _lockish_name(target.id):
                self.origin.setdefault(target.id, target.id)
            if isinstance(value, (ast.IfExp, ast.Attribute)):
                refs = [r for r in self._method_refs(value)
                        if r is not None]
                if refs:
                    self.fn_aliases[target.id] = refs
        elif isinstance(target, (ast.Tuple, ast.List)):
            # `for index, s in d.items()` — the last element gets the
            # dict's value type (and the container's element origin);
            # anything fancier stays untyped
            elts = target.elts
            if t is not None and t.name == "tuple2" and len(elts) == 2 \
                    and isinstance(elts[1], ast.Name):
                if t.elem is not None:
                    self.env[elts[1].id] = t.elem
                if origin is not None:
                    self.origin[elts[1].id] = origin
            for e in elts:
                if isinstance(e, ast.Name) and _lockish_name(e.id):
                    self.env.setdefault(e.id, Type("Lock"))
                    self.origin.setdefault(e.id, e.id)

    def _visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            self._visit(item.context_expr)
            t = self.expr_type(item.context_expr)
            if item.optional_vars is not None:
                self._bind_target(item.optional_vars, t,
                                  self.expr_origin(item.context_expr),
                                  item.context_expr)
            key = self._lock_key(item.context_expr, t)
            if key is not None:
                self.locks.append(key)
                pushed += 1
        for stmt in node.body:
            self._visit(stmt)
        for _ in range(pushed):
            self.locks.pop()

    def _lock_key(self, expr: ast.expr, t: Type | None) -> str | None:
        if t is not None and t.name in ("Lock", "Condition"):
            return self.model.canonical_lock(
                self.expr_origin(expr)) or "<lock>"
        origin = self.expr_origin(expr)
        if origin is not None and _lockish_name(origin):
            return self.model.canonical_lock(origin)
        return None

    def _visit_While(self, node: ast.While) -> None:
        self._visit(node.test)
        self._check_then_act(node, node.test, node.body)
        self.while_depth += 1
        for stmt in node.body:
            self._visit(stmt)
        self.while_depth -= 1
        for stmt in node.orelse:
            self._visit(stmt)

    def _visit_If(self, node: ast.If) -> None:
        self._visit(node.test)
        self._check_then_act(node, node.test, node.body)
        for stmt in node.body:
            self._visit(stmt)
        for stmt in node.orelse:
            self._visit(stmt)

    def _bind_comprehension(self, node: ast.AST) -> None:
        for gen in node.generators:
            self._visit(gen.iter)
            t = self._iter_elem_type(gen.iter)
            self._bind_target(gen.target, t, None, None)
        if isinstance(node, ast.DictComp):
            self._visit(node.key)
            self._visit(node.value)
        elif isinstance(node, ast.GeneratorExp):
            self._visit(node.elt)
        else:
            self._visit(node.elt)

    # -- attribute accesses ----------------------------------------------

    def _visit_store_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Attribute):
            self._record_attr(target, "write")
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Attribute):
                self._record_attr(target.value, "write")
            self._visit(target.slice)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for e in target.elts:
                self._visit_store_target(e)

    def _handle_attribute(self, node: ast.Attribute) -> None:
        self._record_attr(node, "read")

    def _record_attr(self, node: ast.Attribute, kind: str) -> None:
        recv = self.expr_type(node.value)
        if recv is None or recv.name not in self.model.classes:
            return
        if not self.model.attr_declared(recv.name, node.attr):
            return
        in_init = (kind == "write" and self.mi.name == "__init__"
                   and self.mi.cls == recv.name)
        self.mi.accesses.append(AttrAccess(
            cls=recv.name, attr=node.attr, kind=kind,
            method=self.mi.qualname, file=self.mi.file,
            line=node.lineno, col=node.col_offset,
            lockset=frozenset(self.locks), in_init=in_init))

    # -- calls ------------------------------------------------------------

    def _handle_call(self, call: ast.Call) -> None:
        name = _ctor_name(call)
        func = call.func
        recv_t: Type | None = None
        recv_origin: str | None = None
        if isinstance(func, ast.Attribute):
            recv_t = self.expr_type(func.value)
            recv_origin = self.expr_origin(func.value)
            # a mutator call on a container-typed attribute writes it
            if isinstance(func.value, ast.Attribute) and \
                    name in _CONTAINER_MUTATORS:
                inner = self.expr_type(func.value.value)
                if inner is not None and inner.name in self.model.classes \
                        and self.model.attr_declared(inner.name, func.value.attr):
                    t = self.model.attr_type(inner.name, func.value.attr)
                    if t is None or t.name in ("dict", "list", "set"):
                        self._record_attr(func.value, "write")
            # appending a spawned handle into a container re-roots it
            # there (`self._threads.append(thread)` — the join check
            # then looks for a join over that container)
            if name in ("append", "add") and len(call.args) == 1 and \
                    isinstance(call.args[0], ast.Name):
                arg_root = self.origin.get(call.args[0].id,
                                           call.args[0].id)
                container = self.expr_origin(func.value)
                if container is not None:
                    new_root = _root_of(container)
                    for i, spawn in enumerate(self.mi.spawns):
                        if spawn.root == arg_root:
                            self.mi.spawns[i] = dataclasses.replace(
                                spawn, root=new_root)
                    # the handle's primitive identity moves with it:
                    # `thread.start(); self._threads.append(thread)`
                    # must pair with the join over self._threads
                    for i, op in enumerate(self.mi.prim_ops):
                        if op.key == arg_root:
                            self.mi.prim_ops[i] = dataclasses.replace(
                                op, key=f"{new_root}[·]")
        self._spawn_or_prim(call, name, recv_t, recv_origin)
        self._blocking(call, name, recv_t, recv_origin)
        self._call_edge(call, name, recv_t)

    def _spawn_or_prim(self, call: ast.Call, name: str | None,
                       recv_t: Type | None, recv_origin: str | None) -> None:
        mi = self.mi
        if name == "Thread" and self._call_type(call) is not None:
            target = self._kwarg(call, "target")
            role = self._thread_role(call, target)
            mi.spawns.append(SpawnSite(
                "thread", mi.qualname, mi.file, call.lineno,
                call.col_offset, self._method_ref(target), role,
                root=None, escapes=False))
            return
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        if attr == "submit" and recv_t is not None and \
                recv_t.name == "Executor":
            fn = call.args[0] if call.args else None
            role = self._executor_role(func.value)
            for target in self._method_refs(fn):
                mi.spawns.append(SpawnSite(
                    "future", mi.qualname, mi.file, call.lineno,
                    call.col_offset, target, role, root=None,
                    escapes=False))
            mi.prim_ops.append(PrimitiveOp(
                "submit", recv_origin or "<executor>", mi.qualname,
                mi.file, call.lineno))
            return
        if attr == "add_done_callback" and self._is_type(recv_t, "Future"):
            fn = call.args[0] if call.args else None
            for target in self._method_refs(fn):
                mi.spawns.append(SpawnSite(
                    "callback", mi.qualname, mi.file, call.lineno,
                    call.col_offset, target, "callback", root=None,
                    escapes=False))
            mi.consumed_roots.add(recv_origin or "<future>")
            return
        key = recv_origin or "<anon>"
        if attr in ("put", "put_nowait") and self._is_type(recv_t, "Queue"):
            mi.prim_ops.append(PrimitiveOp("put", key, mi.qualname,
                                           mi.file, call.lineno))
        elif attr in ("get", "get_nowait") and self._is_type(recv_t, "Queue"):
            mi.prim_ops.append(PrimitiveOp("get", key, mi.qualname,
                                           mi.file, call.lineno))
        elif attr == "set" and self._is_type(recv_t, "Event"):
            mi.prim_ops.append(PrimitiveOp("set", key, mi.qualname,
                                           mi.file, call.lineno))
        elif attr == "set" and recv_t is None and not call.args and \
                _base_name(key) in _EVENTISH_NAMES:
            # an untyped `done.set()` — handles that crossed methods
            # through an untyped payload (queue item tuples) keep their
            # handoff identity by name
            mi.prim_ops.append(PrimitiveOp("set", key, mi.qualname,
                                           mi.file, call.lineno))
        elif attr == "wait" and self._is_type(recv_t, "Event", "Condition"):
            mi.prim_ops.append(PrimitiveOp("wait", key, mi.qualname,
                                           mi.file, call.lineno))
        elif attr == "start" and self._is_type(recv_t, "Thread"):
            mi.prim_ops.append(PrimitiveOp("start", key, mi.qualname,
                                           mi.file, call.lineno))
        elif attr == "join" and self._is_type(recv_t, "Thread"):
            mi.prim_ops.append(PrimitiveOp("join", key, mi.qualname,
                                           mi.file, call.lineno))
            mi.consumed_roots.add(_root_of(key))
        elif attr == "result" and self._is_type(recv_t, "Future"):
            mi.prim_ops.append(PrimitiveOp("result", key, mi.qualname,
                                           mi.file, call.lineno))
            mi.consumed_roots.add(_root_of(key))

    def _blocking(self, call: ast.Call, name: str | None,
                  recv_t: Type | None, recv_origin: str | None) -> None:
        desc: str | None = None
        if recv_t is not None:
            if name in ("get",) and recv_t.name == "Queue" and \
                    not _nonblocking_get(call):
                desc = "Queue.get()"
            elif name == "join" and recv_t.name == "Thread":
                desc = "Thread.join()"
            elif name == "result" and recv_t.name == "Future":
                desc = "Future.result()"
            elif name == "wait" and recv_t.name in ("Event", "Condition"):
                desc = f"{recv_t.name}.wait()"
            elif name == "acquire" and recv_t.name in ("Lock", "Condition"):
                desc = "Lock.acquire()"
        if desc is None and name in _IO_BLOCKING:
            desc = f"{name}() (simulated I/O)"
        if desc is None:
            return
        self.mi.blocking.append(BlockingCall(
            method=self.mi.qualname, file=self.mi.file, line=call.lineno,
            col=call.col_offset, desc=desc,
            lockset=frozenset(self.locks),
            receiver=self.model.canonical_lock(recv_origin)))
        if name == "wait" and recv_t is not None and \
                recv_t.name == "Condition":
            self.mi.cond_waits.append(
                (call.lineno, call.col_offset, self.while_depth > 0,
                 recv_origin or "<condition>"))

    def _call_edge(self, call: ast.Call, name: str | None,
                   recv_t: Type | None) -> None:
        callee: str | None = None
        func = call.func
        if isinstance(func, ast.Attribute):
            if recv_t is not None and recv_t.name in self.model.classes:
                callee = self.model.resolve_method(recv_t.name, func.attr)
            if callee is None and recv_t is None:
                callee = self.model.resolve_unique(func.attr)
        elif isinstance(func, ast.Name):
            if func.id in self.model.functions:
                callee = func.id
            elif func.id in self.model.classes:
                self.mi.instantiates.add(func.id)
                callee = self.model.resolve_method(func.id, "__init__")
        if callee is not None:
            self.mi.calls.append(CallSite(self.mi.qualname, callee,
                                          self.mi.file, call.lineno,
                                          frozenset(self.locks),
                                          self.while_depth > 0))
        else:
            # the handle escapes through calls the model can't see —
            # be conservative about R018 for any root passed along
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                origin = self.expr_origin(arg) if isinstance(
                    arg, (ast.Name, ast.Attribute)) else None
                if origin is not None:
                    t = self.expr_type(arg)
                    if t is not None and t.name in ("Thread", "Future") or \
                            (t is not None and t.elem is not None and
                             t.elem.name in ("Thread", "Future")):
                        self.mi.escaped_roots.add(_root_of(origin))

    # -- R019: check-then-act --------------------------------------------

    def _check_then_act(self, node: ast.stmt, test: ast.expr,
                        body: list[ast.stmt]) -> None:
        reads = self._attr_reads_in(test)
        if not reads:
            return
        test_lockset = frozenset(self.locks)
        writes = self._attr_writes_under(body)
        for (cls, attr), read_line in reads.items():
            for (wcls, wattr), (wline, wlockset) in writes.items():
                if (cls, attr) != (wcls, wattr):
                    continue
                self.mi.check_then_act.append({
                    "cls": cls, "attr": attr,
                    "line": node.lineno, "col": node.col_offset,
                    "test_line": read_line, "write_line": wline,
                    "test_lockset": test_lockset,
                    "write_lockset": wlockset,
                    "method": self.mi.qualname, "file": self.mi.file,
                })

    def _attr_reads_in(self, test: ast.expr) -> dict:
        reads: dict[tuple[str, str], int] = {}
        for node in ast.walk(test):
            if isinstance(node, ast.Attribute):
                recv = self.expr_type(node.value)
                if recv is not None and \
                        self.model.attr_declared(recv.name, node.attr):
                    reads.setdefault((recv.name, node.attr), node.lineno)
        return reads

    def _attr_writes_under(self, body: list[ast.stmt]) -> dict:
        """Container/attr writes anywhere in the governed branch, with
        the *additional* locks acquired between the test and the write
        (a write re-locked inside the branch is still non-atomic with
        the unlocked test, but the engine needs both locksets)."""
        writes: dict[tuple[str, str], tuple[int, frozenset]] = {}
        base = list(self.locks)

        def walk(stmts: list[ast.stmt], extra: list[str]) -> None:
            for stmt in stmts:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.With):
                        continue
                    target_attr = _written_attr(node)
                    if target_attr is not None:
                        recv_node, attr = target_attr
                        recv = self.expr_type(recv_node)
                        if recv is not None and self.model.attr_declared(
                                recv.name, attr):
                            writes.setdefault(
                                (recv.name, attr),
                                (node.lineno, frozenset(base + extra)))
                if isinstance(stmt, ast.With):
                    keys = []
                    for item in stmt.items:
                        key = self._lock_key(item.context_expr,
                                             self.expr_type(
                                                 item.context_expr))
                        if key is not None:
                            keys.append(key)
                    walk(stmt.body, extra + keys)
                else:
                    sub = [s for s in ast.iter_child_nodes(stmt)
                           if isinstance(s, ast.stmt)]
                    if sub:
                        walk(sub, extra)

        walk(body, [])
        return writes

    # -- small helpers ----------------------------------------------------

    def _is_type(self, t: Type | None, *names: str) -> bool:
        return t is not None and t.name in names

    def _kwarg(self, call: ast.Call, name: str) -> ast.expr | None:
        for kw in call.keywords:
            if kw.arg == name:
                return kw.value
        return None

    def _method_ref(self, node: ast.expr | None) -> str | None:
        refs = self._method_refs(node)
        return refs[0] if refs else None

    def _method_refs(self, node: ast.expr | None) -> list[str | None]:
        """Qualnames a function reference can denote (IfExp yields both
        arms; unresolvable refs yield [None] so the spawn still counts)."""
        if node is None:
            return [None]
        if isinstance(node, ast.IfExp):
            return [r for arm in (node.body, node.orelse)
                    for r in self._method_refs(arm)]
        if isinstance(node, ast.Attribute):
            recv = self.expr_type(node.value)
            if recv is not None:
                resolved = self.model.resolve_method(recv.name, node.attr)
                if resolved is not None:
                    return [resolved]
            return [self.model.resolve_unique(node.attr)]
        if isinstance(node, ast.Name):
            if node.id in self.fn_aliases:
                return list(self.fn_aliases[node.id])
            if node.id in self.model.functions:
                return [node.id]
            t = self.env.get(node.id)
            if t is not None and t.name in self.model.classes:
                return [self.model.resolve_method(t.name, "__call__")]
            # a local alias like `recover_one = self._a if x else self._b`
            origin = self.origin.get(node.id)
            if origin is not None and origin in self.model.methods:
                return [origin]
        return [None]

    def _thread_role(self, call: ast.Call, target: ast.expr | None) -> str:
        name_kw = self._kwarg(call, "name")
        role = _const_prefix(name_kw)
        if role:
            return role
        ref = self._method_ref(target)
        return f"thread:{ref.split('.')[-1]}" if ref else "thread"

    def _executor_role(self, recv: ast.expr) -> str:
        """Role of futures submitted to an executor: its
        thread_name_prefix when the constructor is visible."""
        node = recv
        if isinstance(node, ast.Name):
            origin = self.origin.get(node.id)
            if origin is not None and origin.startswith("executor:"):
                return origin.split(":", 1)[1]
        if isinstance(node, ast.Call):
            prefix = _const_prefix(self._kwarg(node, "thread_name_prefix"))
            if prefix:
                return prefix
        return "executor"


def _written_attr(node: ast.AST) -> tuple[ast.expr, str] | None:
    """(receiver_expr, attr) when *node* writes a tracked attribute:
    subscript store/del, attr store, aug-assign, container mutator."""
    if isinstance(node, (ast.Assign,)):
        for target in node.targets:
            got = _target_attr(target)
            if got:
                return got
    elif isinstance(node, ast.AugAssign):
        return _target_attr(node.target)
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            got = _target_attr(target)
            if got:
                return got
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _CONTAINER_MUTATORS and \
                isinstance(node.func.value, ast.Attribute):
            inner = node.func.value
            return (inner.value, inner.attr)
    return None


def _target_attr(target: ast.expr) -> tuple[ast.expr, str] | None:
    if isinstance(target, ast.Attribute):
        return (target.value, target.attr)
    if isinstance(target, ast.Subscript) and \
            isinstance(target.value, ast.Attribute):
        return (target.value.value, target.value.attr)
    return None


def _nonblocking_get(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "block" and isinstance(kw.value, ast.Constant) \
                and kw.value.value is False:
            return True
        if kw.arg == "timeout" and not (
                isinstance(kw.value, ast.Constant)
                and kw.value.value is None):
            return True
    return False


def _lockish_name(name: str) -> bool:
    low = name.lower()
    return "lock" in low or "mutex" in low


def _root_of(key: str) -> str:
    """Strip element selectors: a join over `ShardWorkerPool._threads[·]`
    consumes the `ShardWorkerPool._threads` root."""
    return key.split("[")[0]


def _const_prefix(node: ast.expr | None) -> str | None:
    """The constant prefix of a thread-name expression: a literal, or
    the leading constant parts of an f-string (`f"shard-worker-{i}"` →
    `shard-worker`)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rstrip("-_0123456789 ") or node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant) and \
                    isinstance(value.value, str):
                parts.append(value.value)
            else:
                break
        if parts:
            joined = "".join(parts).rstrip("-_ ")
            if joined:
                return joined
    return None


# ---------------------------------------------------------------------------
# the per-directory cache
# ---------------------------------------------------------------------------

_MODEL_CACHE: dict[str, tuple[tuple, PackageModel]] = {}


def _dir_signature(directory: Path) -> tuple:
    sig = []
    for path in sorted(directory.glob("*.py")):
        try:
            st = path.stat()
        except OSError:
            continue
        sig.append((path.name, st.st_mtime_ns, st.st_size))
    return tuple(sig)


def package_model(path: Path) -> PackageModel:
    """The (cached) package model for the directory containing *path*."""
    directory = Path(path).resolve().parent
    sig = _dir_signature(directory)
    cached = _MODEL_CACHE.get(str(directory))
    if cached is not None and cached[0] == sig:
        return cached[1]
    model = PackageModel(directory)
    _MODEL_CACHE[str(directory)] = (sig, model)
    return model
