"""repro — a reproduction of Sullivan & Olson, "An Index Implementation
Supporting Fast Recovery for the POSTGRES Storage System" (ICDE 1992).

The package implements, from scratch and over a byte-exact simulated
storage system, the paper's two no-WAL recoverable B-link-tree techniques
(shadow paging and page reorganization), the traditional baseline tree,
the hybrid the paper sketches, the POSTGRES-style no-overwrite transaction
substrate, a WAL comparison layer (physical vs logical logging), the
Section 5 tree-height model, and the benchmark harness that regenerates
Table 1.

Quickstart::

    from repro import StorageEngine, ShadowBLinkTree, TID

    engine = StorageEngine.create(page_size=8192)
    index = ShadowBLinkTree.create(engine, "orders", codec="uint32")
    index.insert(42, TID(7, 0))
    engine.sync()                       # commit-time durability
    assert index.lookup(42) == TID(7, 0)
"""

from .constants import DEFAULT_PAGE_SIZE
from .core import (
    HybridBLinkTree,
    NormalBLinkTree,
    ReorgBLinkTree,
    ShadowBLinkTree,
    TID,
    TREE_CLASSES,
    make_unique,
    split_unique,
)
from .hash import ExtendibleHashIndex
from .rtree import Rect, RTreeIndex
from .errors import (
    CrashError,
    DuplicateKeyError,
    InconsistencyError,
    KeyNotFoundError,
    RecoveryError,
    ReproError,
    TransactionError,
    TreeError,
)
from .storage import (
    CrashOnNthSync,
    CrashOnceKeepingPages,
    CrashPolicy,
    RandomSubsetCrash,
    RecordingPolicy,
    SimulatedDisk,
    StorageEngine,
    SubsetEnumerator,
)

__version__ = "1.0.0"

__all__ = [
    "CrashError",
    "CrashOnNthSync",
    "CrashOnceKeepingPages",
    "CrashPolicy",
    "DEFAULT_PAGE_SIZE",
    "DuplicateKeyError",
    "ExtendibleHashIndex",
    "HybridBLinkTree",
    "InconsistencyError",
    "KeyNotFoundError",
    "NormalBLinkTree",
    "RTreeIndex",
    "RandomSubsetCrash",
    "Rect",
    "RecordingPolicy",
    "RecoveryError",
    "ReorgBLinkTree",
    "ReproError",
    "ShadowBLinkTree",
    "SimulatedDisk",
    "StorageEngine",
    "SubsetEnumerator",
    "TID",
    "TREE_CLASSES",
    "TransactionError",
    "TreeError",
    "__version__",
    "make_unique",
    "split_unique",
]
