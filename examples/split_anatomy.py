#!/usr/bin/env python3
"""Split anatomy: reproduce Figures 1 and 2 as page dumps.

Figure 1 — a shadow page split: the parent ends up with <key, childPtr,
prevPtr> triples whose prevs name the untouched pre-split page.

Figure 2 — a page-reorganization split: the reorganized page keeps a
backup copy of the moved keys in its free space, with prevNKeys and the
newPage pointer set.

Run:  python examples/split_anatomy.py
"""

from repro import ReorgBLinkTree, ShadowBLinkTree, StorageEngine, TID
from repro.core.nodeview import NodeView

PAGE = 512


def drive_to_split(tree):
    """Insert ascending keys until the first leaf split happens."""
    i = 0
    while tree.stats_splits == 0:
        tree.insert(i, TID(1, i % 100))
        i += 1
    return i


def dump(tree, page_no, label):
    buf = tree.file.pin(page_no)
    try:
        view = NodeView(buf.data, tree.page_size)
        print(f"--- {label} (page {page_no}) ---")
        print(view.describe())
    finally:
        tree.file.unpin(buf)
    print()


def shadow_figure1() -> None:
    print("=" * 66)
    print("Figure 1: shadowing page split")
    print("=" * 66)
    engine = StorageEngine.create(page_size=PAGE, seed=1)
    tree = ShadowBLinkTree.create(engine, "fig1", codec="uint32")
    drive_to_split(tree)
    root = tree._root_page()
    rbuf = tree.file.pin(root)
    rview = NodeView(rbuf.data, PAGE)
    children = [rview.child_at(i) for i in range(rview.n_keys)]
    prevs = [rview.prev_at(i) for i in range(rview.n_keys)]
    tree.file.unpin(rbuf)
    dump(tree, root, "parent: <key, childPtr, prevPtr> triples")
    for child in children:
        dump(tree, child, "child half")
    print(f"prev pointers: {prevs} — both point at the pre-split page,")
    print("which the split never modified and which stays on the")
    print("freelist's deferred list until the next sync commits the")
    print("halves.\n")


def reorg_figure2() -> None:
    print("=" * 66)
    print("Figure 2: page split for page reorganization")
    print("=" * 66)
    engine = StorageEngine.create(page_size=PAGE, seed=1)
    tree = ReorgBLinkTree.create(engine, "fig2", codec="uint32")
    drive_to_split(tree)
    # find the reorganized page: it is the one holding backup keys
    for page_no in range(1, tree.file.n_pages):
        buf = tree.file.pin(page_no)
        view = NodeView(buf.data, PAGE)
        is_pa = view.is_leaf and view.prev_n_keys
        pb = view.new_page
        tree.file.unpin(buf)
        if is_pa:
            dump(tree, page_no,
                 "Pa: reorganized in place, live half + backup keys")
            dump(tree, pb, "Pb: fresh page, got the key that caused "
                           "the split")
            break
    print("Pa was built in memory only and remapped onto the original")
    print("page's disk location (buffer-pool metadata); prevNKeys > 0")
    print("marks the backup as live until a sync commits both halves.\n")

    # show the reclamation: a sync then any update drops the backup
    engine.sync()
    tree.delete(0)
    dump(tree, page_no, "Pa after sync + next update: backup reclaimed")


if __name__ == "__main__":
    shadow_figure1()
    reorg_figure2()
