#!/usr/bin/env python3
"""Crash/recovery walkthrough, including Figure 3's worst case.

Builds each recoverable tree, crashes the commit sync keeping a chosen
subset of pages, restarts, and narrates the repairs the tree performs on
first use — ending with the dual-path scenario of Figure 3, where the
root-to-leaf path and the peer-pointer path disagree until the first
insert splices the stale path out.

Run:  python examples/crash_recovery_demo.py
"""

from repro import (
    CrashError,
    CrashOnceKeepingPages,
    StorageEngine,
    TID,
    TREE_CLASSES,
)
from repro.core.nodeview import NodeView
from repro.obs import get_registry, get_trace, render_text

PAGE = 512


def build(kind, seed=13):
    engine = StorageEngine.create(page_size=PAGE, seed=seed)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    committed = set(range(96))
    for i in sorted(committed):
        tree.insert(i, TID(1, i % 100))
        if (i + 1) % 32 == 0:
            engine.sync()
    engine.sync()
    # keep inserting, uncommitted, until a leaf splits
    splits = tree.stats_splits
    i = 96
    while tree.stats_splits == splits:
        tree.insert(i, TID(1, i % 100))
        i += 1
    return engine, tree, committed


def crash_and_recover(kind, keep_fn, label):
    engine, tree, committed = build(kind)
    keep = keep_fn(tree)
    policy = CrashOnceKeepingPages({("ix", p) for p in keep})
    try:
        engine.sync(policy)
    except CrashError as crash:
        print(f"[{kind}] {label}: crashed; kept {sorted(keep) or 'none'}; "
              f"dropped {len(crash.dropped)} pages")
    engine2 = StorageEngine.reopen_after_crash(engine)
    tree2 = TREE_CLASSES[kind].open(engine2, "ix")
    missing = [k for k in committed if tree2.lookup(k) is None]
    assert not missing, f"LOST {missing[:5]}"
    print(f"    all {len(committed)} committed keys recovered")
    for report in tree2.repair_log:
        print(f"    repair: {report}")
    if not len(tree2.repair_log):
        print("    (no repair needed: the durable state was already a "
              "consistent tree)")
    print()


def fresh_pages(tree):
    """Pages touched by the crashed window's split."""
    token = tree.engine.sync_state.token()
    out = {}
    for page_no in range(1, tree.file.n_pages):
        buf = tree.file.pin(page_no)
        view = NodeView(buf.data, tree.page_size)
        if view.sync_token == token:
            out[page_no] = view.is_leaf
        tree.file.unpin(buf)
    return out


def main() -> None:
    print("=" * 66)
    print("Interrupted splits: crash keeping various page subsets")
    print("=" * 66)
    for kind in ("shadow", "reorg", "hybrid"):
        crash_and_recover(kind, lambda t: [], "nothing durable")
        crash_and_recover(
            kind,
            lambda t: [p for p, leaf in fresh_pages(t).items()
                       if not leaf],
            "only the parent durable (children lost)")
        crash_and_recover(
            kind,
            lambda t: [p for p, leaf in fresh_pages(t).items() if leaf],
            "only the new leaves durable (parent lost)")

    print("=" * 66)
    print("Figure 3: the worst-case inconsistent B-link tree")
    print("=" * 66)
    kind = "shadow"
    engine, tree, committed = build(kind)
    fresh = fresh_pages(tree)
    # lose the left neighbour's updated peer pointer: the old peer chain
    # bypasses the new pages while the tree routes through them
    some_leaf = next(p for p, leaf in fresh.items() if leaf)
    buf = tree.file.pin(some_leaf)
    neighbor = NodeView(buf.data, PAGE).left_peer
    tree.file.unpin(buf)
    keep = set(fresh) - {neighbor}
    try:
        engine.sync(CrashOnceKeepingPages({("ix", p) for p in keep}))
    except CrashError:
        pass
    engine2 = StorageEngine.reopen_after_crash(engine)
    tree2 = TREE_CLASSES[kind].open(engine2, "ix")
    print("after restart, before any write:")
    print("  lookups (root-to-leaf path):",
          all(tree2.lookup(k) is not None for k in committed))
    scan = [v for v, _ in tree2.range_scan()]
    print("  scan (peer-pointer path) covers committed keys:",
          set(committed) <= set(scan))
    print("  — the paths may disagree structurally, but they hold the")
    print("    same valid keys, exactly as the paper argues.")
    print("first insert into the region runs the Section 3.5.1 check:")
    tree2.insert(50_000, TID(9, 9))
    tree2.delete(0)
    tree2.insert(0, TID(1, 0))
    for report in tree2.repair_log:
        print(f"  repair: {report}")
    engine2.sync()
    print("done; tree validates:",
          len(tree2.check(strict_tokens=False,
                          require_peer_chain=False)) >= len(committed))

    print()
    print("=" * 66)
    print("observability registry after the demo "
          "(see python -m repro.tools.stats)")
    print("=" * 66)
    print(render_text(get_registry().snapshot()))
    counts = get_trace().counts()
    print("trace events:", ", ".join(f"{k}: {v}"
                                     for k, v in sorted(counts.items())))


if __name__ == "__main__":
    main()
