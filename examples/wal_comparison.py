#!/usr/bin/env python3
"""Section 4 in action: physical vs logical index logging.

Builds the same index twice — once over the baseline tree with ARIES/IM-
style physical key logging, once over the self-recovering shadow tree
with logical operation logging — and compares log volume, then shows the
fault-tolerance argument: a software-corrupted key propagates into the
physical log but can never reach the logical one.

Run:  python examples/wal_comparison.py
"""

from repro.bench.logvolume import run


def main() -> None:
    data = run(n=10_000, page_size=4096)
    print("workload: 10,000 ascending inserts "
          f"({data['splits']} page splits)\n")
    print(f"{'discipline':<12} {'bytes':>12} {'records':>10}")
    print("-" * 36)
    print(f"{'physical':<12} {data['phys_bytes']:>12,} "
          f"{data['phys_records']:>10,}")
    print(f"{'logical':<12} {data['logi_bytes']:>12,} "
          f"{data['logi_records']:>10,}")
    print(f"\nphysical / logical volume: {data['ratio']:.2f}x")
    print("— every key a split moves becomes a delete+insert pair in the")
    print("  physical log; the recoverable trees log nothing for splits.\n")

    print("corruption propagation (a poisoned key planted on a page):")
    print(f"  records carrying the poison — physical: "
          f"{data['phys_poisoned']}, logical: {data['logi_poisoned']}")
    print("— 'Logical logging never copies information from the index")
    print("  into the log.  Corruption of an index page will not be")
    print("  retained after a crash unless the corrupted page is saved")
    print("  in a checkpoint.'")


if __name__ == "__main__":
    main()
