#!/usr/bin/env python3
"""Quickstart: create an engine, build a recoverable index, survive a
crash.

Run:  python examples/quickstart.py
"""

from repro import (
    CrashError,
    CrashOnNthSync,
    ShadowBLinkTree,
    StorageEngine,
    TID,
)


def main() -> None:
    # A storage engine is one simulated machine: files, buffer pools, the
    # global sync counter, and the crash policy.
    engine = StorageEngine.create(page_size=8192)

    # Technique One from the paper: a shadow-paging B-link tree.
    index = ShadowBLinkTree.create(engine, "orders", codec="uint32")

    # Insert some rows' index entries.  A TID names (heap page, slot).
    for order_id in range(1, 1001):
        index.insert(order_id, TID(page_no=1 + order_id // 100,
                                   line=order_id % 100))

    # Commit-time durability is one engine-wide sync: every dirty page is
    # written in OS-chosen order.
    engine.sync()
    print(f"built index: {len(index)} keys, height {index.height}, "
          f"{index.stats_splits} page splits")

    # Point lookups and ordered scans.
    print("lookup(42) ->", index.lookup(42))
    print("range [10, 15) ->",
          [key for key, _ in index.range_scan(10, 15)])

    # Now the part the paper is about: crash during a commit.  The policy
    # persists a random subset of the pages the sync tried to write.
    for order_id in range(1001, 1101):
        index.insert(order_id, TID(12, order_id % 100))
    engine.crash_policy = CrashOnNthSync(1, keep=0)  # every write lost
    try:
        engine.sync()
    except CrashError as crash:
        print(f"\ncrash! {len(crash.written)} pages persisted, "
              f"{len(crash.dropped)} lost")

    # Restart: reopen from durable state only.  No log replay — the tree
    # repairs itself lazily as it is used.
    engine2 = StorageEngine.reopen_after_crash(engine)
    index2 = ShadowBLinkTree.open(engine2, "orders")
    assert all(index2.lookup(order_id) is not None
               for order_id in range(1, 1001)), "committed keys lost!"
    print("after restart: all 1000 committed keys present")
    print("repairs performed on first use:",
          [str(r) for r in index2.repair_log] or "none needed")

    # The index keeps working.
    index2.insert(5000, TID(50, 0))
    engine2.sync()
    print("post-recovery insert OK; total keys:", len(index2))


if __name__ == "__main__":
    main()
