#!/usr/bin/env python3
"""The paper's generalization claim, live: recoverable R-tree and
extendible hash.

"Although we have implemented them only for B-link-trees, the same
techniques can be used for R-trees, extensible hash indices, and other
B-tree variants."  Both structures here use the shadow technique — prev
pointers beside every child/bucket pointer, detection on first use,
repair by re-executing the interrupted split — and both survive the same
crash harness as the trees.

Run:  python examples/spatial_and_hash.py
"""

import random

from repro import (
    CrashError,
    ExtendibleHashIndex,
    RandomSubsetCrash,
    Rect,
    RTreeIndex,
    StorageEngine,
    TID,
)


def rtree_demo() -> None:
    print("=" * 60)
    print("shadow-recoverable R-tree (spatial index)")
    print("=" * 60)
    rng = random.Random(7)
    engine = StorageEngine.create(page_size=1024, seed=1)
    rt = RTreeIndex.create(engine, "parks")
    committed = []
    for i in range(400):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        rect = Rect(x, y, x + rng.uniform(0.5, 3), y + rng.uniform(0.5, 3))
        rt.insert(rect, TID(1 + i // 200, i % 200))
        committed.append((rect, TID(1 + i // 200, i % 200)))
        if (i + 1) % 50 == 0:
            engine.sync()
    engine.sync()
    query = Rect(20, 20, 40, 40)
    hits = rt.search(query)
    print(f"built: 400 rects, {rt.stats_splits} splits; "
          f"window query hits: {len(hits)}")

    # crash mid-commit; recovery preserves every committed rectangle
    for i in range(400, 450):
        x = rng.uniform(0, 100)
        rt.insert(Rect(x, x, x + 1, x + 1), TID(9, i % 200))
    engine.crash_policy = RandomSubsetCrash(p=1.0, seed=3)
    try:
        engine.sync()
    except CrashError:
        print("crash during commit!")
    engine2 = StorageEngine.reopen_after_crash(engine)
    rt2 = RTreeIndex.open(engine2, "parks")
    ok = all((rect, tid) in rt2.search(rect) for rect, tid in committed)
    print(f"after restart: all committed rectangles found: {ok}")
    print("repairs:", [str(r) for r in rt2.repair_log] or "none needed")
    print("— the parent's MBR plays the key range's role: a child whose")
    print("  rectangles escape the promised MBR is detected on first use")
    print("  and rebuilt from the prev page.\n")


def hash_demo() -> None:
    print("=" * 60)
    print("shadow-recoverable extendible hash index")
    print("=" * 60)
    engine = StorageEngine.create(page_size=1024, seed=2)
    ix = ExtendibleHashIndex.create(engine, "sessions", codec="uint32")
    for i in range(1500):
        ix.insert(i, TID(1 + (i >> 8), i & 0xFF))
        if (i + 1) % 100 == 0:
            engine.sync()
    engine.sync()
    print(f"built: 1500 keys; global depth {ix.global_depth}, "
          f"{ix.stats_bucket_splits} bucket splits, "
          f"{ix.stats_directory_doublings} directory doublings")

    for i in range(1500, 1600):
        ix.insert(i, TID(9, i % 200))
    engine.crash_policy = RandomSubsetCrash(p=1.0, seed=5)
    try:
        engine.sync()
    except CrashError:
        print("crash during commit!")
    engine2 = StorageEngine.reopen_after_crash(engine)
    ix2 = ExtendibleHashIndex.open(engine2, "sessions")
    ok = all(ix2.lookup(i) is not None for i in range(1500))
    print(f"after restart: all 1500 committed keys found: {ok}")
    print("repairs:", [str(r) for r in ix2.repair_log] or "none needed")
    print("— directory slots hold <bucketPtr, prevPtr> pairs; a lost")
    print("  bucket is rebuilt by re-hashing the prev bucket's keys, and")
    print("  a lost directory is re-doubled from the previous chain.")


if __name__ == "__main__":
    rtree_demo()
    hash_demo()
