#!/usr/bin/env python3
"""A small bank ledger on the full no-WAL stack.

Demonstrates the paper's end-to-end story: the heap is no-overwrite with
(xmin, xmax) versioning, the index is a recoverable shadow B-link tree,
commit is sync-then-flip, and after a crash the uncommitted transfer is
simply invisible — no undo, no log replay, restart in milliseconds.

Run:  python examples/bank_ledger.py
"""

import struct

from repro import CrashError, RandomSubsetCrash, StorageEngine
from repro.txn import IndexedTable, TransactionManager

_BALANCE = struct.Struct("<q")


def encode(balance: int) -> bytes:
    return _BALANCE.pack(balance)


def decode(raw: bytes) -> int:
    return _BALANCE.unpack(raw)[0]


def transfer(table, txns, src: int, dst: int, amount: int) -> None:
    """Move money inside one transaction: delete old versions, insert new
    ones (the POSTGRES no-overwrite update)."""
    with txns.begin() as txn:
        src_balance = decode(table.get(src, xid=txn.xid))
        dst_balance = decode(table.get(dst, xid=txn.xid))
        if src_balance < amount:
            raise ValueError("insufficient funds")
        table.delete(txn, src)
        table.delete(txn, dst)
        # a new version under a bumped account-version key would be the
        # archival-faithful shape; for the demo we reuse the key space
        table.index.delete(src)
        table.index.delete(dst)
        table.insert(txn, src, encode(src_balance - amount))
        table.insert(txn, dst, encode(dst_balance + amount))


def main() -> None:
    engine = StorageEngine.create(page_size=2048, seed=42)
    txns = TransactionManager(engine)
    ledger = IndexedTable.create(engine, txns, "accounts",
                                 index_kind="shadow", codec="uint32")

    # open 100 accounts with 1000 units each
    with txns.begin() as txn:
        for account in range(100):
            ledger.insert(txn, account, encode(1000))
    total = sum(decode(raw) for _, raw in ledger.scan())
    print(f"opened 100 accounts; total balance {total}")

    # a day of committed transfers
    for step in range(50):
        transfer(ledger, txns, src=step % 100, dst=(step * 7 + 3) % 100,
                 amount=50)
    total = sum(decode(raw) for _, raw in ledger.scan())
    print(f"after 50 committed transfers: total balance {total} "
          "(conserved)")

    # a transfer whose commit sync crashes half-way
    engine.crash_policy = RandomSubsetCrash(p=1.0, seed=9)
    try:
        transfer(ledger, txns, src=0, dst=1, amount=500)
        print("unexpected: commit survived")
    except CrashError:
        print("\ncrash during the transfer's commit sync!")

    # restart: no recovery pass at all
    engine2 = StorageEngine.reopen_after_crash(engine)
    txns2 = TransactionManager(engine2)
    ledger2 = IndexedTable.open(engine2, txns2, "accounts")
    balances = {k: decode(raw) for k, raw in ledger2.scan()}
    total = sum(balances.values())
    print(f"after restart: {len(balances)} accounts, total balance "
          f"{total}")
    assert total == 100 * 1000, "money created or destroyed!"
    print("the interrupted transfer is invisible: its tuple versions "
          "belong\nto a transaction whose commit bit never flipped.")

    # life goes on
    transfer(ledger2, txns2, src=5, dst=6, amount=123)
    print("post-recovery transfer OK; account 6 =",
          decode(ledger2.get(6)))


if __name__ == "__main__":
    main()
