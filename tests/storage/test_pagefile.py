"""Paged files: reservation of page 0, durable extension, pin-aware
allocation."""

# pagefile-layer unit tests: pin/unpin pairing is the behaviour under
# test, exercised deliberately without the pinned() wrapper
# lint: disable=R001,R002

import pytest

from repro.errors import PageError
from repro.storage import PageFile, SimulatedDisk


def make_file():
    return PageFile("f", SimulatedDisk("f", 256))


def test_page_zero_reserved():
    file = make_file()
    assert file.allocate() == 1
    with pytest.raises(PageError):
        file.pin(0)
    meta = file.pin_meta()
    assert meta.page_no == 0
    file.unpin(meta)


def test_extension_reserves_slot_durably():
    file = make_file()
    page = file.allocate()
    # the zero page was written synchronously at allocation time
    assert file.disk.n_pages == page + 1
    assert file.disk.durable_image(page) == bytes(256)


def test_allocate_prefers_freelist():
    file = make_file()
    a = file.allocate()
    file.free(a)
    assert file.allocate() == a


def test_deferred_free_needs_drain():
    file = make_file()
    a = file.allocate()
    file.free_after_sync(a)
    assert file.allocate() != a
    file.freelist.drain_after_sync()
    assert file.allocate() == a


def test_pinned_page_not_recycled():
    file = make_file()
    a = file.allocate()
    buf = file.pin(a)
    file.free(a)
    assert file.allocate() != a     # skipped while pinned
    file.unpin(buf)
    assert file.allocate() == a


def test_dirty_pages_flow_to_dirty_batch():
    file = make_file()
    a = file.allocate()
    buf = file.pin(a)
    buf.data[0] = 0x42
    file.mark_dirty(buf)
    file.unpin(buf)
    assert a in file.pool.dirty_batch()


def test_n_pages_tracks_in_memory_extensions():
    file = make_file()
    for _ in range(5):
        file.allocate()
    assert file.n_pages == 6
