"""Freelist: deferred frees, key-range reuse rule, pin protection."""

import pytest

from repro.errors import FreelistError
from repro.storage import FreeEntry, Freelist, ranges_overlap


class Extender:
    def __init__(self, start=10):
        self.next = start

    def __call__(self):
        self.next += 1
        return self.next - 1


def make(pins=None):
    pins = pins or {}
    return Freelist(Extender(), lambda p: pins.get(p, 0))


# -- ranges_overlap ---------------------------------------------------------

@pytest.mark.parametrize("a,b,expect", [
    ((b"a", b"c"), (b"b", b"d"), True),
    ((b"a", b"b"), (b"b", b"c"), False),     # half-open: [a,b) vs [b,c)
    ((b"a", None), (b"z", None), True),      # both unbounded above
    ((b"a", b"b"), (b"c", None), False),
    (None, (b"a", b"b"), False),             # no recorded range
    ((b"a", b"b"), None, False),
    ((b"m", b"m"), (b"a", b"z"), False),     # empty range
])
def test_ranges_overlap(a, b, expect):
    assert ranges_overlap(a, b) is expect


# -- allocation -----------------------------------------------------------

def test_allocate_extends_when_empty():
    fl = make()
    assert fl.allocate() == 10
    assert fl.allocate() == 11
    assert fl.stats_extended == 2


def test_free_then_allocate_recycles():
    fl = make()
    fl.free(5)
    assert fl.allocate() == 5
    assert fl.stats_recycled == 1


def test_overlapping_range_not_recycled():
    """Section 3.3.3: a page must not be reallocated for a key range
    overlapping the one it held, or a lost new image would be
    undetectable."""
    fl = make()
    fl.free(5, (b"\x10", b"\x20"))
    # overlapping request: skip page 5, extend instead
    assert fl.allocate((b"\x18", b"\x30")) == 10
    # disjoint request: page 5 is fine
    assert fl.allocate((b"\x30", b"\x40")) == 5


def test_pinned_page_not_recycled():
    pins = {5: 1}
    fl = Freelist(Extender(), lambda p: pins.get(p, 0))
    fl.free(5)
    assert fl.allocate() == 10      # skipped while pinned
    pins[5] = 0
    assert fl.allocate() == 5


def test_deferred_free_requires_sync():
    fl = make()
    fl.free_after_sync(5, (b"a", b"b"))
    assert fl.pending == 1
    assert fl.allocate() == 10      # not yet available
    fl.drain_after_sync()
    assert fl.pending == 0
    assert fl.allocate() == 5


def test_double_free_detected():
    fl = make()
    fl.free(5)
    with pytest.raises(FreelistError):
        fl.free(5)
    with pytest.raises(FreelistError):
        fl.free_after_sync(5)


def test_page_zero_never_freeable():
    fl = make()
    with pytest.raises(FreelistError):
        fl.free(0)


def test_entries_roundtrip_through_load():
    fl = make()
    fl.free(3, (b"a", b"b"))
    fl.free(4, None)
    entries = fl.entries()
    fl2 = make()
    fl2.load_entries(entries)
    assert len(fl2) == 2
    assert fl2.allocate((b"c", b"d")) in (3, 4)


def test_free_entry_dataclass():
    entry = FreeEntry(7, (b"a", None))
    assert entry.page_no == 7
    assert entry.key_range == (b"a", None)
