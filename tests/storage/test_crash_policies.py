"""Crash-policy behaviour, including the exhaustive subset enumerator."""

from repro.storage import (
    CrashNever,
    CrashOnNthSync,
    CrashOnceKeepingPages,
    RandomSubsetCrash,
    RecordingPolicy,
    SubsetEnumerator,
)

BATCH = [("f", 1), ("f", 2), ("f", 3)]


def test_never_crashes():
    assert CrashNever().select(BATCH) is None


def test_nth_sync_prefix_keep():
    policy = CrashOnNthSync(1, keep=2)
    assert policy.select(BATCH) == BATCH[:2]


def test_nth_sync_index_keep():
    policy = CrashOnNthSync(1, keep=[0, 2])
    assert policy.select(BATCH) == [BATCH[0], BATCH[2]]


def test_nth_sync_callable_keep():
    policy = CrashOnNthSync(1, keep=lambda b: [b[-1]])
    assert policy.select(BATCH) == [BATCH[-1]]


def test_nth_sync_waits_for_nth():
    policy = CrashOnNthSync(3, keep=0)
    assert policy.select(BATCH) is None
    assert policy.select(BATCH) is None
    assert policy.select(BATCH) == []
    assert policy.select(BATCH) is None  # fires once


def test_keep_pages_ignores_absent_ids():
    policy = CrashOnceKeepingPages({("f", 2), ("g", 9)})
    assert policy.select(BATCH) == [("f", 2)]
    assert policy.select(BATCH) is None  # one-shot


def test_random_subset_deterministic_with_seed():
    a = RandomSubsetCrash(p=1.0, seed=42).select(BATCH)
    b = RandomSubsetCrash(p=1.0, seed=42).select(BATCH)
    assert a == b


def test_random_subset_probability_zero_never_fires():
    policy = RandomSubsetCrash(p=0.0, seed=1)
    assert all(policy.select(BATCH) is None for _ in range(50))


def test_recording_policy_accumulates_batches():
    policy = RecordingPolicy()
    assert policy.select(BATCH) is None
    assert policy.select(BATCH[:1]) is None
    assert policy.batches == [BATCH, BATCH[:1]]


def test_subset_enumerator_exhaustive_small_batch():
    subsets = list(SubsetEnumerator(BATCH).subsets())
    assert len(subsets) == 2 ** len(BATCH)
    assert len(set(subsets)) == len(subsets)
    assert () in subsets
    assert tuple(BATCH) in subsets


def test_subset_enumerator_samples_large_batch():
    batch = [("f", i) for i in range(20)]
    subsets = list(SubsetEnumerator(batch, max_exhaustive=8,
                                    sample=64).subsets())
    assert len(subsets) == 64
    assert () in subsets
    assert tuple(batch) in subsets
    assert len(set(subsets)) == len(subsets)


def test_subset_enumerator_yields_policies():
    policies = list(SubsetEnumerator(BATCH, sync_index=1))
    assert len(policies) == 8
    kept = policies[3].select(BATCH)
    assert kept is not None
    assert set(kept) <= set(BATCH)
