"""Storage engine: files, engine-wide sync, crash/restart, shutdown."""

# engine-layer unit tests: bare pin/dirty sequences and raw token
# comparisons exercise the primitives the higher-level helpers wrap
# lint: disable=R001,R002,R004

import pytest

from repro.errors import CrashError, ReproError
from repro.storage import (
    CrashOnceKeepingPages,
    CrashOnNthSync,
    StorageEngine,
)
from repro.storage.engine import EngineDeadError


def test_create_and_reopen_file():
    engine = StorageEngine.create(page_size=256)
    file = engine.create_file("a")
    assert engine.open_file("a") is file
    assert "a" in engine.file_names()


def test_duplicate_file_rejected():
    engine = StorageEngine.create(page_size=256)
    engine.create_file("a")
    with pytest.raises(ReproError):
        engine.create_file("a")


def test_open_missing_file_rejected():
    engine = StorageEngine.create(page_size=256)
    with pytest.raises(ReproError):
        engine.open_file("ghost")


def test_sync_writes_all_dirty_pages_across_files():
    engine = StorageEngine.create(page_size=256)
    fa, fb = engine.create_file("a"), engine.create_file("b")
    for file, fill in ((fa, 1), (fb, 2)):
        page_no = file.allocate()
        buf = file.pin(page_no)
        buf.data[:] = bytes([fill]) * 256
        file.mark_dirty(buf)
        file.unpin(buf)
    engine.sync()
    assert fa.disk.read_page(1) == bytes([1]) * 256
    assert fb.disk.read_page(1) == bytes([2]) * 256
    assert fa.pool.dirty_batch() == {}


def test_crash_kills_engine():
    engine = StorageEngine.create(page_size=256)
    file = engine.create_file("a")
    page_no = file.allocate()
    buf = file.pin(page_no)
    file.mark_dirty(buf)
    file.unpin(buf)
    engine.crash_policy = CrashOnNthSync(1, keep=0)
    with pytest.raises(CrashError):
        engine.sync()
    assert engine.dead
    with pytest.raises(EngineDeadError):
        engine.sync()
    with pytest.raises(EngineDeadError):
        engine.create_file("b")


def test_reopen_after_crash_restarts_counter_from_persisted_max():
    engine = StorageEngine.create(page_size=256, counter_batch=16)
    engine.create_file("a")
    for _ in range(5):
        engine.sync_state.note_split()
        engine.sync()
    pre_crash_counter = engine.sync_state.counter
    engine.crash_policy = CrashOnNthSync(1, keep=0)
    file = engine.open_file("a")
    page_no = file.allocate()
    buf = file.pin(page_no)
    file.mark_dirty(buf)
    file.unpin(buf)
    with pytest.raises(CrashError):
        engine.sync()

    engine2 = StorageEngine.reopen_after_crash(engine)
    assert engine2.sync_state.counter > pre_crash_counter
    assert engine2.sync_state.last_crash_token == engine2.sync_state.counter


def test_clean_shutdown_preserves_counter():
    engine = StorageEngine.create(page_size=256, counter_batch=16)
    engine.create_file("a")
    engine.sync_state.note_split()
    engine.sync()
    counter = engine.sync_state.counter
    engine.shutdown()
    assert engine.dead

    engine2 = StorageEngine.reopen(engine)
    assert engine2.sync_state.counter == counter
    # and the clean flag is cleared so a subsequent crash is recognized
    engine3 = StorageEngine.reopen_after_crash(engine2)
    assert engine3.sync_state.counter >= counter


def test_durable_state_shared_across_reopen():
    engine = StorageEngine.create(page_size=256)
    file = engine.create_file("a")
    page_no = file.allocate()
    buf = file.pin(page_no)
    buf.data[:] = bytes([7]) * 256
    file.mark_dirty(buf)
    file.unpin(buf)
    engine.sync()
    engine.shutdown()
    engine2 = StorageEngine.reopen(engine)
    file2 = engine2.open_file("a")
    buf2 = file2.pin(page_no)
    assert bytes(buf2.data) == bytes([7]) * 256
    file2.unpin(buf2)


def test_post_sync_hooks_fire_on_success_only():
    engine = StorageEngine.create(page_size=256)
    engine.create_file("a")
    fired = []
    engine.post_sync_hooks.append(lambda: fired.append(1))
    engine.sync()
    assert fired == [1]


def test_extension_is_durable_immediately():
    """File extension writes a zero page synchronously, so a post-crash
    reopen can never hand out a page number a durable parent references."""
    engine = StorageEngine.create(page_size=256)
    file = engine.create_file("a")
    page_no = file.allocate()
    # no sync at all — yet the slot is reserved on stable storage
    assert file.disk.n_pages == page_no + 1
    engine2 = StorageEngine.reopen_after_crash(engine)
    file2 = engine2.open_file("a")
    assert file2.allocate() == page_no + 1


def test_max_counter_persisted_at_creation():
    """The SyncState constructor requests a counter-ceiling persist before
    ``engine.sync_state`` exists; the engine must flush that request with
    its first control write rather than parking it in a dead attribute."""
    from repro.storage.engine import _CONTROL_FILE, _CONTROL_STRUCT

    engine = StorageEngine.create(page_size=256)
    assert not engine._control_flush_pending
    assert not hasattr(engine, "_pending_max")
    raw = engine._disks[_CONTROL_FILE].read_page(0)
    _magic, max_counter, counter, _tok, _clean = \
        _CONTROL_STRUCT.unpack_from(raw, 0)
    assert max_counter == engine.sync_state.max_counter > counter


def test_crashed_sync_does_not_inflate_completed_count():
    engine = StorageEngine.create(page_size=256)
    file = engine.create_file("a")
    buf = file.pin(file.allocate())
    buf.data[0] = 1
    file.mark_dirty(buf)
    file.unpin(buf)
    before = engine.stats_syncs
    with pytest.raises(CrashError):
        engine.sync(CrashOnceKeepingPages(set()))
    assert engine.stats_syncs == before
    assert engine.stats_crashed_syncs == 1


def _dirty_one_page(engine, name="a"):
    file = engine.open_file(name)
    buf = file.pin(file.allocate())
    file.mark_dirty(buf)
    file.unpin(buf)


def test_shutdown_is_idempotent():
    engine = StorageEngine.create(page_size=256)
    engine.create_file("a")
    _dirty_one_page(engine)
    engine.shutdown()
    assert engine.dead and engine.clean_shutdown
    syncs = engine.stats_syncs
    engine.shutdown()  # operator retry: must be a silent no-op
    engine.shutdown()
    assert engine.dead and engine.clean_shutdown
    assert engine.stats_syncs == syncs, "retries must not sync again"


def test_shutdown_of_crashed_engine_raises():
    engine = StorageEngine.create(page_size=256)
    engine.create_file("a")
    _dirty_one_page(engine)
    engine.crash_policy = CrashOnNthSync(1, keep=0)
    with pytest.raises(CrashError):
        engine.sync()
    # a crash record must never be overwritten by a clean one
    with pytest.raises(EngineDeadError):
        engine.shutdown()
    assert engine.dead and not engine.clean_shutdown


def test_reopen_after_crash_rejects_clean_shutdown():
    engine = StorageEngine.create(page_size=256)
    engine.create_file("a")
    engine.shutdown()
    with pytest.raises(ReproError) as excinfo:
        StorageEngine.reopen_after_crash(engine)
    assert "shut down cleanly" in str(excinfo.value)
    # the general restart path still works on the same engine
    engine2 = StorageEngine.reopen(engine)
    assert "a" in engine2.file_names()
