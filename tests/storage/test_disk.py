"""Simulated disk: atomic page writes, unordered sync, crash subsets."""

import pytest

from repro.errors import CrashError, PageError
from repro.storage import (
    CrashOnNthSync,
    CrashOnceKeepingPages,
    NO_CRASH,
    SimulatedDisk,
)


def make_disk(**kw):
    return SimulatedDisk("t", 128, **kw)


def page(byte):
    return bytes([byte]) * 128


def test_unwritten_pages_read_back_zeroed():
    disk = make_disk()
    assert disk.read_page(5) == bytes(128)


def test_write_then_read():
    disk = make_disk()
    disk.write_page(3, page(7))
    assert disk.read_page(3) == page(7)
    assert disk.n_pages == 4


def test_write_wrong_size_rejected():
    disk = make_disk()
    with pytest.raises(PageError):
        disk.write_page(0, b"short")


def test_negative_page_rejected():
    disk = make_disk()
    with pytest.raises(PageError):
        disk.read_page(-1)
    with pytest.raises(PageError):
        disk.write_page(-1, page(0))


def test_sync_writes_every_page():
    disk = make_disk()
    batch = {i: page(i) for i in range(5)}
    disk.sync(batch, NO_CRASH)
    for i in range(5):
        assert disk.read_page(i) == page(i)


def test_sync_crash_keeps_selected_subset_only():
    disk = make_disk()
    disk.write_page(1, page(0xAA))
    batch = {1: page(1), 2: page(2), 3: page(3)}
    policy = CrashOnceKeepingPages({("t", 2)})
    with pytest.raises(CrashError) as exc:
        disk.sync(batch, policy)
    assert disk.read_page(2) == page(2)          # survived
    assert disk.read_page(1) == page(0xAA)       # kept its OLD image
    assert disk.read_page(3) == bytes(128)       # never written
    assert set(exc.value.written) == {("t", 2)}
    assert set(exc.value.dropped) == {("t", 1), ("t", 3)}


def test_crash_on_nth_sync_counts_syncs():
    disk = make_disk()
    policy = CrashOnNthSync(2, keep=0)
    disk.sync({0: page(1)}, policy)              # sync 1 passes
    with pytest.raises(CrashError):
        disk.sync({0: page(2)}, policy)          # sync 2 crashes
    assert disk.read_page(0) == page(1)


def test_single_page_writes_are_atomic_under_crash():
    # the paper assumes single-page atomicity: a crashed sync leaves each
    # page as either its old image or its new image, never a mixture
    disk = make_disk()
    disk.write_page(0, page(0x11))
    with pytest.raises(CrashError):
        disk.sync({0: page(0x22)}, CrashOnNthSync(1, keep=0))
    assert disk.read_page(0) in (page(0x11), page(0x22))


def test_snapshot_restore_roundtrip():
    disk = make_disk()
    disk.write_page(0, page(1))
    snap = disk.snapshot()
    disk.write_page(0, page(2))
    disk.write_page(9, page(9))
    disk.restore(snap)
    assert disk.read_page(0) == page(1)
    assert disk.read_page(9) == bytes(128)
    assert disk.n_pages == 1


def test_durable_image_distinguishes_never_written():
    disk = make_disk()
    assert disk.durable_image(4) is None
    disk.write_page(4, bytes(128))
    assert disk.durable_image(4) == bytes(128)


def test_stats_accumulate():
    disk = make_disk()
    disk.write_page(0, page(0))
    disk.read_page(0)
    disk.sync({1: page(1)})
    assert disk.stats.writes == 2
    assert disk.stats.reads == 1
    assert disk.stats.syncs == 1
    assert disk.stats.bytes_written == 256
    assert disk.stats.as_dict()["crashes"] == 0


def test_shuffle_controls_write_order():
    order_seen = []

    def record_order(batch):
        order_seen.append(list(batch))

    disk = SimulatedDisk("t", 128, shuffle=lambda lst: lst.reverse())

    class Spy(type(NO_CRASH)):
        def select(self, batch):
            record_order(batch)
            return None

    disk.sync({0: page(0), 1: page(1), 2: page(2)}, Spy())
    assert order_seen[0] == [("t", 2), ("t", 1), ("t", 0)]
