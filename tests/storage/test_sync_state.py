"""Sync counter / sync token machinery (paper Section 3.2)."""

# SyncState unit tests compare raw tokens on purpose: the helpers the
# rule points at are themselves the code under test
# lint: disable=R004

from repro.storage import SyncState


class MaxRecorder:
    def __init__(self):
        self.values = []

    def __call__(self, value):
        self.values.append(value)

    @property
    def last(self):
        return self.values[-1]


def test_fresh_state_persists_initial_maximum():
    rec = MaxRecorder()
    state = SyncState.fresh(rec, batch=10)
    assert state.counter == 1
    assert rec.last == 11
    assert state.max_counter == 11


def test_counter_advances_only_when_split_occurred():
    state = SyncState.fresh(MaxRecorder(), batch=100)
    state.on_sync_complete()
    assert state.counter == 1        # no split: no advance
    state.note_split()
    state.on_sync_complete()
    assert state.counter == 2
    state.on_sync_complete()
    assert state.counter == 2        # flag was consumed


def test_maximum_always_exceeds_counter():
    rec = MaxRecorder()
    state = SyncState.fresh(rec, batch=3)
    for _ in range(20):
        state.note_split()
        state.on_sync_complete()
        assert state.max_counter > state.counter


def test_after_crash_restarts_at_persisted_maximum():
    state = SyncState.after_crash(MaxRecorder(), persisted_max=500, batch=8)
    assert state.counter == 500
    assert state.last_crash_token == 500
    # every pre-crash token is strictly below the restart value
    assert state.predates_last_crash(499)
    assert not state.predates_last_crash(500)


def test_after_clean_shutdown_preserves_counter():
    state = SyncState.after_clean_shutdown(
        MaxRecorder(), counter=42, last_crash_token=30, persisted_max=100)
    assert state.counter == 42
    assert state.last_crash_token == 30


def test_synced_since_init_token_comparison():
    state = SyncState.fresh(MaxRecorder(), batch=100)
    token = state.token()
    assert not state.synced_since_init(token)
    state.note_split()
    state.on_sync_complete()
    assert state.synced_since_init(token)


def test_shutdown_record_roundtrip():
    rec = MaxRecorder()
    state = SyncState.fresh(rec, batch=10)
    state.note_split()
    state.on_sync_complete()
    counter, last_crash, maximum = state.shutdown_record()
    revived = SyncState.after_clean_shutdown(
        rec, counter=counter, last_crash_token=last_crash,
        persisted_max=maximum)
    assert revived.counter == state.counter
    assert revived.last_crash_token == state.last_crash_token


def test_tokens_unique_across_crash_epochs():
    """The invariant everything relies on: a token issued after recovery
    is strictly greater than any token issued before the crash."""
    rec = MaxRecorder()
    state = SyncState.fresh(rec, batch=5)
    pre_crash_tokens = []
    for _ in range(12):
        pre_crash_tokens.append(state.token())
        state.note_split()
        state.on_sync_complete()
    state2 = SyncState.after_crash(rec, persisted_max=rec.last, batch=5)
    assert all(state2.token() > t for t in pre_crash_tokens)
