"""Page header codec and raw-page helpers."""

# header-codec unit tests mutate raw buffers with no pool in sight
# (R012 is the per-path form of the same dirty discipline)
# lint: disable=R003,R012

import pytest

from repro.constants import (
    MAX_PAGE_SIZE,
    MIN_PAGE_SIZE,
    PAGE_INTERNAL,
    PAGE_LEAF,
    PAGE_MAGIC,
)
from repro.errors import PageCorruptError, PageError
from repro.storage import page as P


def test_header_roundtrip_all_fields():
    header = P.PageHeader(
        page_type=PAGE_INTERNAL, flags=0x05, level=3, n_keys=17,
        prev_n_keys=34, new_page=99, left_peer=7, right_peer=8,
        sync_token=0xDEADBEEF, left_peer_token=11, right_peer_token=12,
        lower=100, upper=400, backup_count=17, lsn=123456789,
    )
    buf = bytearray(512)
    P.write_header(buf, header)
    assert P.read_header(buf) == header


def test_header_size_is_64():
    assert P.HEADER_SIZE == 64


def test_new_page_is_formatted_empty():
    buf = P.new_page(256, PAGE_LEAF)
    header = P.read_header(buf)
    assert header.page_type == PAGE_LEAF
    assert header.n_keys == 0
    assert header.lower == P.HEADER_SIZE
    assert header.upper == 256
    assert P.free_space(header) == 256 - P.HEADER_SIZE


def test_read_header_rejects_bad_magic():
    with pytest.raises(PageCorruptError):
        P.read_header(bytearray(128))


def test_try_read_header_returns_none_for_zeroed():
    assert P.try_read_header(bytearray(128)) is None
    assert P.try_read_header(P.new_page(128)) is not None


def test_valid_magic_probe():
    assert not P.valid_magic(bytearray(128))
    assert P.valid_magic(P.new_page(128))
    junk = bytearray(128)
    junk[0] = 0xFF
    assert not P.valid_magic(junk)


def test_is_zeroed():
    assert P.is_zeroed(bytearray(64))
    buf = bytearray(64)
    buf[63] = 1
    assert not P.is_zeroed(buf)


def test_line_table_get_set():
    buf = P.new_page(256)
    P.set_line(buf, 0, 200)
    P.set_line(buf, 1, 180)
    assert P.get_line(buf, 0) == 200
    assert P.get_line(buf, 1) == 180
    assert P.line_offset(2) == P.HEADER_SIZE + 4


@pytest.mark.parametrize("size", [MIN_PAGE_SIZE - 1, MAX_PAGE_SIZE + 1, 0])
def test_page_size_bounds_rejected(size):
    with pytest.raises(PageError):
        P.validate_page_size(size)


@pytest.mark.parametrize("size", [MIN_PAGE_SIZE, 512, 8192, MAX_PAGE_SIZE])
def test_page_size_bounds_accepted(size):
    assert P.validate_page_size(size) == size


def test_structural_check_accepts_fresh_page():
    buf = P.new_page(256, PAGE_LEAF)
    header = P.structural_check(buf, 256)
    assert header.page_type == PAGE_LEAF


def test_structural_check_rejects_crossed_pointers():
    buf = P.new_page(256, PAGE_LEAF)
    header = P.read_header(buf)
    header.lower, header.upper = 300, 100
    P.write_header(buf, header)
    with pytest.raises(PageCorruptError):
        P.structural_check(buf, 256)


def test_structural_check_rejects_line_table_overrun():
    buf = P.new_page(256, PAGE_LEAF)
    header = P.read_header(buf)
    header.n_keys = 1000
    P.write_header(buf, header)
    with pytest.raises(PageCorruptError):
        P.structural_check(buf, 256)


def test_field_accessors_match_header_struct():
    buf = P.new_page(512, PAGE_LEAF, level=2, sync_token=77)
    assert P.get_u16(buf, P.OFF_MAGIC) == PAGE_MAGIC
    assert P.get_u16(buf, P.OFF_LEVEL) == 2
    assert P.get_u64(buf, P.OFF_SYNC_TOKEN) == 77
    P.set_u32(buf, P.OFF_NEW_PAGE, 0x12345678)
    assert P.read_header(buf).new_page == 0x12345678
    P.set_u16(buf, P.OFF_N_KEYS, 9)
    assert P.read_header(buf).n_keys == 9
