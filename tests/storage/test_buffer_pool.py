"""Buffer pool: pinning, dirty tracking, remapping, eviction."""

import pytest

from repro.errors import BufferError_
from repro.storage import BufferPool, SimulatedDisk


def make_pool(capacity=None):
    disk = SimulatedDisk("t", 128)
    return disk, BufferPool(disk, capacity=capacity)


def test_pin_faults_in_from_disk():
    disk, pool = make_pool()
    disk.write_page(2, bytes([9]) * 128)
    buf = pool.pin(2)
    assert bytes(buf.data) == bytes([9]) * 128
    assert buf.pin_count == 1
    assert pool.stats_misses == 1


def test_pin_twice_shares_frame():
    _, pool = make_pool()
    a = pool.pin(1)
    b = pool.pin(1)
    assert a is b
    assert a.pin_count == 2
    assert pool.stats_hits == 1


def test_unpin_below_zero_rejected():
    _, pool = make_pool()
    buf = pool.pin(1)
    pool.unpin(buf)
    with pytest.raises(BufferError_):
        pool.unpin(buf)


def test_mark_dirty_requires_pin():
    _, pool = make_pool()
    buf = pool.pin(1)
    pool.unpin(buf)
    with pytest.raises(BufferError_):
        pool.mark_dirty(buf)


def test_dirty_batch_snapshot():
    _, pool = make_pool()
    buf = pool.pin(3)
    buf.data[0] = 0xAB
    pool.mark_dirty(buf)
    batch = pool.dirty_batch()
    assert list(batch) == [3]
    assert batch[3][0] == 0xAB
    buf.data[0] = 0xCD   # snapshot must not alias the live buffer
    assert batch[3][0] == 0xAB
    pool.clear_dirty(iter([3]))
    assert pool.dirty_batch() == {}


def test_remap_rebinds_virtual_buffer():
    _, pool = make_pool()
    old = pool.pin(5)
    virtual = pool.allocate_virtual(bytearray(b"\x01" * 128))
    newbuf = pool.remap(virtual, old)
    assert newbuf.page_no == 5
    assert newbuf.pin_count == 1
    assert newbuf.dirty
    assert pool.pin(5) is newbuf
    assert old.page_no is None


def test_remap_requires_single_pin_on_target():
    _, pool = make_pool()
    old = pool.pin(5)
    pool.pin(5)  # second pin
    virtual = pool.allocate_virtual(bytearray(128))
    with pytest.raises(BufferError_):
        pool.remap(virtual, old)


def test_remap_rejects_non_virtual_source():
    _, pool = make_pool()
    a = pool.pin(1)
    b = pool.pin(2)
    with pytest.raises(BufferError_):
        pool.remap(a, b)


def test_pin_count_query_for_allocator():
    _, pool = make_pool()
    assert pool.pin_count(7) == 0
    buf = pool.pin(7)
    assert pool.pin_count(7) == 1
    pool.unpin(buf)
    assert pool.pin_count(7) == 0


def test_eviction_drops_clean_unpinned_lru():
    _, pool = make_pool(capacity=2)
    a = pool.pin(1)
    pool.unpin(a)
    b = pool.pin(2)
    pool.unpin(b)
    c = pool.pin(3)   # exceeds capacity: page 1 (LRU, clean) evicted
    pool.unpin(c)
    assert 1 not in pool.cached_pages()
    assert set(pool.cached_pages()) == {2, 3}


def test_eviction_never_drops_pinned_or_dirty():
    _, pool = make_pool(capacity=1)
    a = pool.pin(1)
    pool.mark_dirty(a)
    pool.unpin(a)
    b = pool.pin(2)          # cannot evict dirty page 1
    assert set(pool.cached_pages()) == {1, 2}
    assert pool.stats_overflows == 1
    pool.unpin(b)


def test_drop_rejects_pinned():
    _, pool = make_pool()
    buf = pool.pin(1)
    with pytest.raises(BufferError_):
        pool.drop(1)
    pool.unpin(buf)
    pool.drop(1)
    assert pool.cached_pages() == []
