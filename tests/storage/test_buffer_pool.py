"""Buffer pool: pinning, dirty tracking, remapping, eviction."""

# buffer-layer unit tests: pin/unpin and eviction ARE the subject under
# test, so the paired-call discipline is exercised deliberately raw
# (R011/R013 are the path-sensitive forms of the same pin discipline)
# lint: disable=R001,R002,R011,R013

import pytest

from repro.errors import BufferError_
from repro.storage import BufferPool, SimulatedDisk


def make_pool(capacity=None):
    disk = SimulatedDisk("t", 128)
    return disk, BufferPool(disk, capacity=capacity)


def test_pin_faults_in_from_disk():
    disk, pool = make_pool()
    disk.write_page(2, bytes([9]) * 128)
    buf = pool.pin(2)
    assert bytes(buf.data) == bytes([9]) * 128
    assert buf.pin_count == 1
    assert pool.stats_misses == 1


def test_pin_twice_shares_frame():
    _, pool = make_pool()
    a = pool.pin(1)
    b = pool.pin(1)
    assert a is b
    assert a.pin_count == 2
    assert pool.stats_hits == 1


def test_unpin_below_zero_rejected():
    _, pool = make_pool()
    buf = pool.pin(1)
    pool.unpin(buf)
    with pytest.raises(BufferError_):
        pool.unpin(buf)


def test_mark_dirty_requires_pin():
    _, pool = make_pool()
    buf = pool.pin(1)
    pool.unpin(buf)
    with pytest.raises(BufferError_):
        pool.mark_dirty(buf)


def test_dirty_batch_snapshot():
    _, pool = make_pool()
    buf = pool.pin(3)
    buf.data[0] = 0xAB
    pool.mark_dirty(buf)
    batch = pool.dirty_batch()
    assert list(batch) == [3]
    assert batch[3][0] == 0xAB
    buf.data[0] = 0xCD   # snapshot must not alias the live buffer
    assert batch[3][0] == 0xAB
    pool.clear_dirty(iter([3]))
    assert pool.dirty_batch() == {}


def test_remap_rebinds_virtual_buffer():
    _, pool = make_pool()
    old = pool.pin(5)
    virtual = pool.allocate_virtual(bytearray(b"\x01" * 128))
    newbuf = pool.remap(virtual, old)
    assert newbuf.page_no == 5
    assert newbuf.pin_count == 1
    assert newbuf.dirty
    assert pool.pin(5) is newbuf
    assert old.page_no is None


def test_remap_requires_single_pin_on_target():
    _, pool = make_pool()
    old = pool.pin(5)
    pool.pin(5)  # second pin
    virtual = pool.allocate_virtual(bytearray(128))
    with pytest.raises(BufferError_):
        pool.remap(virtual, old)


def test_remap_rejects_non_virtual_source():
    _, pool = make_pool()
    a = pool.pin(1)
    b = pool.pin(2)
    with pytest.raises(BufferError_):
        pool.remap(a, b)


def test_pin_count_query_for_allocator():
    _, pool = make_pool()
    assert pool.pin_count(7) == 0
    buf = pool.pin(7)
    assert pool.pin_count(7) == 1
    pool.unpin(buf)
    assert pool.pin_count(7) == 0


def test_eviction_drops_clean_unpinned_lru():
    _, pool = make_pool(capacity=2)
    a = pool.pin(1)
    pool.unpin(a)
    b = pool.pin(2)
    pool.unpin(b)
    c = pool.pin(3)   # exceeds capacity: page 1 (LRU, clean) evicted
    pool.unpin(c)
    assert 1 not in pool.cached_pages()
    assert set(pool.cached_pages()) == {2, 3}


def test_eviction_never_drops_pinned_or_dirty():
    _, pool = make_pool(capacity=1)
    a = pool.pin(1)
    pool.mark_dirty(a)
    pool.unpin(a)
    b = pool.pin(2)          # cannot evict dirty page 1
    assert set(pool.cached_pages()) == {1, 2}
    assert pool.stats_overflows == 1
    pool.unpin(b)


def test_drop_rejects_pinned():
    _, pool = make_pool()
    buf = pool.pin(1)
    with pytest.raises(BufferError_):
        pool.drop(1)
    pool.unpin(buf)
    pool.drop(1)
    assert pool.cached_pages() == []


# -- volatile frames under capacity pressure (the eviction bugfix) --------

def _note_volatile_page(pool, page_no, marker=0x5A):
    """Pin a page, mutate it buffer-only, and advertise the divergence."""
    buf = pool.pin(page_no)
    buf.data[0] = marker
    pool.note_volatile(buf)     # deliberately NOT marked dirty
    pool.unpin(buf)
    return buf


def test_volatile_frame_survives_capacity_pressure():
    """Regression: a clean, unpinned frame carrying a buffer-only
    advertisement (shadow split's ``new_page``) must not be evicted —
    eviction would silently discard the advertisement before the sync
    that retires it."""
    _, pool = make_pool(capacity=2)
    _note_volatile_page(pool, 1)
    for p in (2, 3, 4):                     # well past capacity
        pool.unpin(pool.pin(p))
    assert 1 in pool.cached_pages()
    assert pool.is_volatile(1)
    buf = pool.pin(1)
    assert buf.data[0] == 0x5A              # advertisement intact
    pool.unpin(buf)
    assert pool.stats_volatile_exemptions > 0


def test_eviction_skips_volatile_and_takes_next_lru():
    _, pool = make_pool(capacity=2)
    _note_volatile_page(pool, 1)            # LRU but exempt
    pool.unpin(pool.pin(2))
    pool.unpin(pool.pin(3))                 # evicts 2, not 1
    assert set(pool.cached_pages()) == {1, 3}
    assert pool.stats_evictions == 1
    assert pool.stats_volatile_exemptions >= 1


def test_all_volatile_counts_overflow():
    _, pool = make_pool(capacity=1)
    _note_volatile_page(pool, 1)
    pool.unpin(pool.pin(2))                 # nothing evictable
    assert set(pool.cached_pages()) == {1, 2}
    assert pool.stats_overflows == 1


def test_sync_retires_volatile_notes():
    """clear_dirty (sync completion) ends the advertisement: the clean
    divergent frame is dropped so later reads fault the durable image."""
    disk, pool = make_pool(capacity=2)
    disk.write_page(1, bytes([7]) * 128)
    _note_volatile_page(pool, 1)
    pool.clear_dirty(iter([]))
    assert 1 not in pool.cached_pages()
    assert not pool.is_volatile(1)
    buf = pool.pin(1)
    assert buf.data[0] == 7                 # durable image, not the note
    pool.unpin(buf)


def test_mark_dirty_supersedes_volatile_note():
    _, pool = make_pool(capacity=2)
    buf = pool.pin(1)
    buf.data[0] = 0x5A
    pool.note_volatile(buf)
    pool.mark_dirty(buf)                    # divergence now sync-visible
    pool.unpin(buf)
    assert not pool.is_volatile(1)


def test_drop_and_remap_discard_volatile_note():
    _, pool = make_pool()
    _note_volatile_page(pool, 1)
    pool.drop(1)
    assert not pool.is_volatile(1)
    virt = pool.allocate_virtual(bytearray(128))
    old = pool.pin(2)
    old.data[0] = 0x5A
    pool.note_volatile(old)
    pool.remap(virt, old)
    assert not pool.is_volatile(2)
    pool.unpin(virt)
