"""Failure *during* parallel recovery, and an exhaustive crash-subset
sweep over one group-sync window.

Two properties beyond single-engine recovery:

* a shard that crashes **again while its own recovery is running** must
  not take the orchestrator down — siblings finish, the failure is
  reported, and a retry pass heals the victim;
* for a barrier window in which one shard dies mid-sync, *every* subset
  of that shard's sync batch must recover under the parallel
  orchestrator — the group analogue of the single-engine exhaustive
  sweep in ``test_exhaustive_subsets.py``.
"""

import pytest

from repro import TID, CrashError
from repro.shard import (GroupSyncScheduler, RecoveryOrchestrator,
                         ShardedEngine)
from repro.storage import (CrashOnNthSync, RandomSubsetCrash,
                           RecordingPolicy, SubsetEnumerator)

PAGE = 512
KEYS = 180
N_SHARDS = 3


def tid_for(i):
    return TID(1 + (i >> 8), i & 0xFF)


def build_group(seed=19):
    group = ShardedEngine.create(N_SHARDS, page_size=PAGE, seed=seed)
    tree = group.create_tree("shadow", "ix", codec="uint32")
    for k in range(KEYS):
        tree.insert(k, tid_for(k))
        if (k + 1) % 60 == 0:
            group.sync_all()
    group.sync_all()
    return group, tree


def crash_all(group, tree, seed=29):
    for index in range(N_SHARDS):
        group.shard(index).crash_policy = RandomSubsetCrash(
            p=1.0, seed=seed + index)
    for j in range(KEYS, KEYS + 60):
        try:
            tree.insert(j, tid_for(j))
        except CrashError:
            continue
    for index in list(group.live_shards()):
        try:
            group.shard(index).sync()
        except CrashError:
            pass
    assert len(group.crashed_shards()) == N_SHARDS


# ---------------------------------------------------------------------------
# crash while siblings are mid-repair
# ---------------------------------------------------------------------------

def test_shard_crashing_again_mid_recovery_is_isolated():
    group, tree = build_group()
    crash_all(group, tree)
    victim = 1

    def rearm(index, engine):
        # the victim's recovery incarnation dies at its verify sync,
        # i.e. while its siblings are still driving their own repairs
        if index == victim:
            engine.crash_policy = CrashOnNthSync(1, keep=0)

    group2, report = RecoveryOrchestrator(on_reopen=rearm).recover(
        group, "ix")
    assert not report.ok
    assert report.failed_shards() == [victim]
    by_shard = {r.shard: r for r in report.shards}
    assert "crashed during recovery" in by_shard[victim].error
    for index in (0, 2):
        assert by_shard[index].ok, by_shard[index].error
    # survivors are live; the victim stays dead inside the group
    assert victim in group2.crashed_shards()
    assert set(group2.live_shards()) == {0, 2}

    # a retry pass (no rearm this time) heals the victim
    group3, retry = RecoveryOrchestrator().recover(group2, "ix")
    assert retry.ok
    tree3 = group3.open_tree("ix")
    scanned = {k for k, _ in tree3.range_scan()}
    missing = [k for k in range(KEYS) if k not in scanned]
    assert not missing, f"lost committed keys {missing[:10]}"
    # survivors recovered in pass one are carried through untouched
    for index in (0, 2):
        assert group3.shard(index) is group2.shard(index)


def test_every_shard_crashing_mid_recovery_still_terminates():
    group, tree = build_group(seed=37)
    crash_all(group, tree, seed=43)

    def rearm_all(index, engine):
        engine.crash_policy = CrashOnNthSync(1, keep=0)

    group2, report = RecoveryOrchestrator(on_reopen=rearm_all).recover(
        group, "ix")
    assert not report.ok
    assert sorted(report.failed_shards()) == list(range(N_SHARDS))
    group3, retry = RecoveryOrchestrator().recover(group2, "ix")
    assert retry.ok
    scanned = {k for k, _ in group3.open_tree("ix").range_scan()}
    assert set(range(KEYS)) <= scanned


# ---------------------------------------------------------------------------
# exhaustive subset sweep over one group-sync window
# ---------------------------------------------------------------------------

def build_window_scenario(seed=47):
    """Deterministically build a group where the next barrier commits an
    in-flight leaf split on shard 0 (and only there)."""
    group, tree = build_group(seed=seed)
    scheduler = GroupSyncScheduler(group, dirty_threshold=10_000)
    victim_tree = tree.trees[0]
    splits = victim_tree.stats_splits
    k = 1_000_000
    while victim_tree.stats_splits == splits:
        if tree.shard_of(k) == 0:
            tree.insert(k, tid_for(k % 4096))
        k += 1
    return group, tree, scheduler


def test_every_crash_subset_of_a_group_sync_window_recovers():
    committed = set(range(KEYS))

    # probe: learn the victim's sync batch for this window
    probe_group, _, probe_sched = build_window_scenario()
    recorder = RecordingPolicy()
    probe_group.shard(0).crash_policy = recorder
    assert probe_sched.sync_group() == []
    batch = recorder.batches[0]
    assert len(batch) >= 2, f"unexpected batch size {len(batch)}"

    subsets = list(SubsetEnumerator(batch, max_exhaustive=8,
                                    sample=100).subsets())
    for subset in subsets:
        if len(subset) == len(batch):
            continue  # that sync simply succeeds
        group, tree, scheduler = build_window_scenario()
        group.shard(0).crash_policy = CrashOnNthSync(1,
                                                     keep=list(subset))
        crashed = scheduler.sync_group()
        assert crashed == [0]
        assert scheduler.crash_windows == {0: scheduler.window}
        # siblings synced to completion inside the same window
        assert all(group.dirty_page_counts()[i] == 0
                   for i in group.live_shards())

        group2, report = RecoveryOrchestrator().recover(group, "ix")
        assert report.ok, report.shards
        tree2 = group2.open_tree("ix")
        scanned = {key for key, _ in tree2.range_scan()}
        missing = [key for key in committed if key not in scanned]
        assert not missing, (
            f"subset {sorted(subset)} lost committed keys "
            f"{missing[:10]}")
        # the healed group accepts and persists new work
        tree2.insert(2_000_000, tid_for(7))
        assert group2.sync_all() == []
