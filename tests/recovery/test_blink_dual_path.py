"""Figure 3: the worst-case inconsistent B-link tree.

A crash can leave the root-to-leaf path holding the post-split version of
a page while the peer-pointer path still runs through the pre-split
version — with *matching* link tokens, so scans cannot tell.  The paper's
guarantees, which these tests verify:

* until the first insert/delete near the duplicates, both paths hold the
  same set of valid keys — reads stay correct;
* the first modification runs the Section 3.5.1 check and splices the
  stale path out before the paths can diverge.
"""

import pytest

from repro import (
    CrashError,
    CrashOnceKeepingPages,
    StorageEngine,
    TID,
    TREE_CLASSES,
)
from repro.core.detect import Kind
from repro.core.nodeview import NodeView

from .helpers import PAGE, find_split, tid_for

KINDS = ["shadow", "reorg", "hybrid"]


def build_dual_path(kind: str, seed: int = 13):
    """Crash so that the split's products and the parent survive but the
    left neighbour's re-stamped peer pointer does not: the old chain then
    bypasses the new pages while the tree routes through them."""
    engine = StorageEngine.create(page_size=PAGE, seed=seed)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    committed = set(range(96))
    for i in sorted(committed):
        tree.insert(i, tid_for(i))
        if (i + 1) % 32 == 0:
            engine.sync()
    engine.sync()
    splits = tree.stats_splits
    i = 96
    while tree.stats_splits == splits:
        tree.insert(i, tid_for(i))
        i += 1
    split = find_split(tree)
    pa = split["pa"]
    with tree.file.pinned(pa) as buf:
        neighbor = NodeView(buf.data, tree.page_size).left_peer
    keep = {p for p in (split["parent"], split["pa"], split["pb"],
                        split["old"]) if p}
    keep.discard(neighbor)
    policy = CrashOnceKeepingPages({("ix", p) for p in keep})
    with pytest.raises(CrashError):
        engine.sync(policy)
    engine2 = StorageEngine.reopen_after_crash(engine)
    tree2 = TREE_CLASSES[kind].open(engine2, "ix")
    return tree2, committed, neighbor


@pytest.mark.parametrize("kind", KINDS)
def test_reads_correct_before_any_write(kind):
    """'Until the first insert/delete after the failure, the duplicate
    pages contain the same set of valid keys.'"""
    tree, committed, _ = build_dual_path(kind)
    for key in sorted(committed):
        assert tree.lookup(key) is not None, key
    values = [v for v, _ in tree.range_scan()]
    assert values == sorted(set(values))
    assert committed <= set(values)


@pytest.mark.parametrize("kind", KINDS)
def test_first_insert_heals_the_path(kind):
    tree, committed, neighbor = build_dual_path(kind)
    # insert keys across the whole range so the damaged region is touched
    for key in range(5000, 5060):
        tree.insert(key, tid_for(key))
    for key in sorted(committed)[::-1]:
        tree.delete(key)
        tree.insert(key, tid_for(key))
    tree.engine.sync()
    # after touching everything, the chain must equal the in-order leaves
    pairs = tree.check(strict_tokens=False, require_peer_chain=True)
    found = {int.from_bytes(k, "big") for k, _ in pairs}
    assert committed <= found


@pytest.mark.parametrize("kind", KINDS)
def test_peer_path_check_is_recorded_and_memoized(kind):
    tree, committed, _ = build_dual_path(kind)
    lo = min(committed)
    tree.delete(lo)
    tree.insert(lo, tid_for(lo))
    checks = tree.repair_log.count(Kind.PEER_PATH_CHECK)
    # repeating the update on the same leaf does not re-walk
    tree.delete(lo)
    tree.insert(lo, tid_for(lo))
    assert tree.repair_log.count(Kind.PEER_PATH_CHECK) == checks
