"""The five page-reorganization crash states (paper Section 3.4).

Each test drives the tree to the moment after a leaf split, then crashes
the commit sync keeping exactly the subset of pages that defines one of
the paper's cases:

    (a) only Pa written (replacing P)
    (b) only Pa and Pb written (Pb inaccessible from the parent)
    (c) only the parent and Pa written
    (d) only the parent and Pb written
    (e) only the parent written
    (-) only Pb written — "the tree is not inconsistent (but Pb is lost)"
    (-) nothing written — the whole window evaporates

Recovery must preserve every committed key, accept new work afterwards,
and the repair log must show the matching action.
"""

import pytest

from repro.core.detect import Action, Kind

from .helpers import build_to_split, crash_keeping, verify_recovered

KIND = "reorg"


def scenario():
    engine, tree, committed, uncommitted, split = build_to_split(KIND)
    assert split["pa"] and split["pb"] and split["parent"]
    return engine, tree, committed, split


def run_case(keep_keys):
    engine, tree, committed, split = scenario()
    keep = [split[name] for name in keep_keys]
    crash_keeping(engine, tree, "ix", keep)
    return engine, committed, split


def recovered_tree(engine, committed):
    return verify_recovered(KIND, engine, committed)


def test_case_a_only_pa_written():
    engine, committed, split = run_case(["pa"])
    tree2 = recovered_tree(engine, committed)
    # the original page was restored from its backup
    assert any(r.kind is Kind.RESTORED_ORIGINAL for r in tree2.repair_log)


def test_case_b_pa_and_pb_written():
    engine, committed, split = run_case(["pa", "pb"])
    tree2 = recovered_tree(engine, committed)
    assert any(r.kind is Kind.RESTORED_ORIGINAL for r in tree2.repair_log)


def test_case_c_parent_and_pa_written():
    engine, committed, split = run_case(["parent", "pa"])
    tree2 = recovered_tree(engine, committed)
    # Pb was regenerated from Pa's backup keys
    kinds = {r.kind for r in tree2.repair_log}
    assert Kind.LOST_SIBLING in kinds or Kind.ZEROED_CHILD in kinds


def test_case_d_parent_and_pb_written():
    engine, committed, split = run_case(["parent", "pb"])
    tree2 = recovered_tree(engine, committed)
    # Pa's slot still held the pre-split page: the split was redone
    assert any(r.kind is Kind.WIDE_CHILD
               and r.action is Action.REDID_SPLIT
               for r in tree2.repair_log)


def test_case_e_only_parent_written():
    engine, committed, split = run_case(["parent"])
    tree2 = recovered_tree(engine, committed)
    assert any(r.action is Action.REDID_SPLIT for r in tree2.repair_log)


def test_only_pb_written_tree_consistent():
    """Paper: 'If only Pb is written, the tree is not inconsistent (but
    page Pb is lost).'"""
    engine, committed, split = run_case(["pb"])
    tree2 = recovered_tree(engine, committed)


def test_nothing_written():
    engine, committed, split = run_case([])
    recovered_tree(engine, committed)


def test_pa_backup_contains_exactly_pbs_half():
    """Structural cross-check of Figure 2 at the crash point."""
    from repro.core import items as I
    from repro.core.nodeview import NodeView
    engine, tree, committed, split = scenario()
    buf = tree.file.pin(split["pa"])
    try:
        pa = NodeView(buf.data, tree.page_size)
        backup_keys = [I.item_key(b, 0) for b in pa.backup_items()]
        assert pa.prev_n_keys == pa.n_keys + len(backup_keys)
    finally:
        tree.file.unpin(buf)
    pbuf = tree.file.pin(split["pb"])
    try:
        pb = NodeView(pbuf.data, tree.page_size)
        pb_keys = list(pb.keys())
        # Pb = backup half plus the split-triggering key
        assert set(backup_keys) <= set(pb_keys)
        assert len(pb_keys) == len(backup_keys) + 1
    finally:
        tree.file.unpin(pbuf)


def test_repeated_crashes_across_epochs():
    """Crash, recover, crash again in a later window: tokens from all
    epochs coexist and recovery still holds."""
    from repro import StorageEngine, TREE_CLASSES
    from .helpers import tid_for
    engine, tree, committed, split = scenario()
    crash_keeping(engine, tree, "ix", [split["parent"]])

    engine2 = StorageEngine.reopen_after_crash(engine)
    tree2 = TREE_CLASSES[KIND].open(engine2, "ix")
    for k in sorted(committed):
        assert tree2.lookup(k) is not None
    # new committed work, then a second crash in a fresh window
    for key in range(200, 280):
        tree2.insert(key, tid_for(key))
    engine2.sync()
    committed |= set(range(200, 280))
    splits_before = tree2.stats_splits
    key = 300
    while tree2.stats_splits == splits_before:
        tree2.insert(key, tid_for(key))
        key += 1
    from .helpers import find_split
    split2 = find_split(tree2)
    crash_keeping(engine2, tree2, "ix",
                  [p for p in (split2["parent"],) if p])
    verify_recovered(KIND, engine2, committed)
