"""Clean shutdown: freelist persistence and the erase-before-reuse rule
(Section 3.3.3)."""

import pytest

from repro import StorageEngine, TREE_CLASSES
from repro.core.meta import MetaView

from .helpers import PAGE, tid_for


def build_with_free_pages(kind, seed=17):
    engine = StorageEngine.create(page_size=PAGE, seed=seed)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    for i in range(300):
        tree.insert(i, tid_for(i))
        if (i + 1) % 64 == 0:
            engine.sync()
    for i in range(100, 250):
        tree.delete(i)
    engine.sync()
    assert len(tree.file.freelist) > 0
    return engine, tree


@pytest.mark.parametrize("kind", ["shadow", "reorg", "normal", "hybrid"])
def test_freelist_survives_clean_shutdown(kind):
    engine, tree = build_with_free_pages(kind)
    free_before = len(tree.file.freelist)
    tree.close_clean()
    engine.shutdown()

    engine2 = StorageEngine.reopen(engine)
    tree2 = TREE_CLASSES[kind].open(engine2, "ix")
    assert len(tree2.file.freelist) > 0
    assert len(tree2.file.freelist) <= free_before
    # reloaded pages are genuinely reusable
    recycled_before = tree2.file.freelist.stats_recycled
    for key in range(1000, 1200):
        tree2.insert(key, tid_for(key))
    engine2.sync()
    assert tree2.file.freelist.stats_recycled > recycled_before
    pairs = tree2.check()
    assert len(pairs) == 150 + 200


@pytest.mark.parametrize("kind", ["shadow", "reorg"])
def test_snapshot_erased_durably_before_reuse(kind):
    """'the freelist on disk must be deleted before any of the pages on
    the list are reallocated.  Otherwise, a crash will cause the old
    freelist to be valid again and allow the pages to be allocated
    twice.'"""
    engine, tree = build_with_free_pages(kind)
    tree.close_clean()
    engine.shutdown()

    engine2 = StorageEngine.reopen(engine)
    tree2 = TREE_CLASSES[kind].open(engine2, "ix")
    # the durable snapshot is gone the moment the list is loaded
    raw = tree2.file.disk.read_page(0)
    meta = MetaView(bytearray(raw), PAGE)
    assert meta.load_freelist() == []

    # simulate an immediate crash: the reopened store must NOT see the
    # old snapshot again
    engine3 = StorageEngine.reopen_after_crash(engine2)
    tree3 = TREE_CLASSES[kind].open(engine3, "ix")
    assert len(tree3.file.freelist) == 0  # volatile list died, snapshot gone
    for key in range(2000, 2100):
        tree3.insert(key, tid_for(key))
    engine3.sync()
    values = [v for v, _ in tree3.range_scan()]
    assert values == sorted(set(values))


@pytest.mark.parametrize("kind", ["shadow", "reorg"])
def test_crash_without_clean_shutdown_loses_freelist(kind):
    engine, tree = build_with_free_pages(kind)
    # no close_clean, no shutdown: the list is volatile
    engine.dead = True
    engine2 = StorageEngine.reopen_after_crash(engine)
    tree2 = TREE_CLASSES[kind].open(engine2, "ix")
    assert len(tree2.file.freelist) == 0
    # the pages leak until the garbage collector regenerates the list
    from repro.core.gc import collect_garbage
    report = collect_garbage(tree2)
    assert report.leaked > 0
