"""Exhaustive crash-subset sweep over a mid-replay re-crash.

Log-based recovery adds its own sync to the crash surface: each shard's
replay partition work ends with a completion sync that makes the redone
state durable.  A shard that dies *there* — mid-parallel-replay, with an
arbitrary subset of its redone pages persisted — must be isolated
exactly like any other recovery-time crash: sibling shards finish their
own partitions, the victim is reported failed and stays gated, and a
second replay pass over the persisted subset **converges** to the same
state a clean replay produces — the redo test plus idempotent
re-execution make repeated partial redo safe.

The sweep enumerates every subset of the victim's replay-completion sync
batch (sampled past ``max_exhaustive``), mirroring the heal-completion
campaign in ``test_recrash_during_heal.py``.
"""

import pytest

from repro.bench.logvolume import build_wal_group
from repro.shard import RecoveryOrchestrator, ShardedEngine
from repro.storage import CrashOnNthSync, RecordingPolicy, SubsetEnumerator
from repro.tools.fsck import fsck_group

PAGE = 512
N_SHARDS = 3
COMMITTED = 150
TAIL = 60


def build(seed):
    """Deterministically rebuild the same crashed logged group."""
    return build_wal_group(N_SHARDS, committed_keys=COMMITTED,
                           tail_keys=TAIL, page_size=PAGE, seed=seed)


def recover(group, log, *, on_reopen=None):
    orchestrator = RecoveryOrchestrator(wal=log,
                                        wal_mode="parallel-logical",
                                        wal_subparts=2,
                                        on_reopen=on_reopen)
    return orchestrator.recover(group, "ix")


@pytest.mark.parametrize("seed", [17, 23])
def test_every_crash_subset_of_a_replay_completion_sync_converges(seed):
    # reference: a clean replay of the same crashed group
    ref_group, ref_report = recover(*_group_and_log(seed))
    assert ref_report.ok
    ref_scan = list(ref_group.open_tree("ix").range_scan())
    expected = {v for v, _ in ref_scan}

    # probe: learn each shard's replay-completion sync batch.  Partition
    # redo itself never syncs, so the completion sync is the shard's
    # first (and only) sync during recovery.
    recorders = [RecordingPolicy() for _ in range(N_SHARDS)]

    def record(index, engine):
        engine.crash_policy = recorders[index]

    probe_group, probe_report = recover(*_group_and_log(seed),
                                        on_reopen=record)
    assert probe_report.ok
    assert all(len(r.batches) == 1 for r in recorders), \
        "each shard's replay must sync exactly once (the completion sync)"
    victim = max(range(N_SHARDS),
                 key=lambda i: len(recorders[i].batches[0]))
    batch = recorders[victim].batches[0]
    assert len(batch) >= 2, f"unexpected completion batch {batch}"

    subsets = list(SubsetEnumerator(batch, max_exhaustive=6,
                                    sample=40, seed=seed).subsets())
    for subset in subsets:
        if len(subset) == len(batch):
            continue  # that sync simply succeeds

        def arm(index, engine, keep=subset):
            if index == victim:
                engine.crash_policy = CrashOnNthSync(1, keep=list(keep))

        group, log = _group_and_log(seed)
        recovered, report = recover(group, log, on_reopen=arm)

        # the victim died at its completion sync and stays gated;
        # siblings replayed to completion
        assert not report.ok
        assert report.failed_shards() == [victim], (
            f"subset {sorted(subset)}: {report.failed_shards()}")
        assert victim in recovered.crashed_shards()
        assert victim in report.redo.crashed_shards
        for shard_report in report.shards:
            if shard_report.shard != victim:
                assert shard_report.ok, (
                    f"subset {sorted(subset)}: sibling "
                    f"{shard_report.shard} failed: {shard_report.error}")

        # second replay pass over the persisted subset converges
        retried, retry = recover(recovered, log)
        assert retry.ok, (
            f"subset {sorted(subset)}: retry failed "
            f"{[(r.shard, r.error) for r in retry.shards if not r.ok]}")
        assert fsck_group(retried).errors == 0
        scan = list(retried.open_tree("ix").range_scan())
        assert scan == ref_scan, (
            f"subset {sorted(subset)}: second replay diverged from the "
            f"clean replay")
        assert {v for v, _ in scan} == expected


def _group_and_log(seed):
    group, wal, _committed, _tail = build(seed)
    return group, wal.log


def test_recrash_during_replay_is_idempotent_under_repeated_retries(
        seed=37):
    """Crash the victim's completion sync twice in a row (keeping
    nothing), then let the third pass through: replay over an already
    partially-redone shard must keep converging, with re-executed work
    surfacing as idempotent skips rather than conflicts."""
    group, log = _group_and_log(seed)
    victim = 1

    def arm(index, engine):
        if index == victim:
            engine.crash_policy = CrashOnNthSync(1, keep=0)

    for _attempt in range(2):
        group, report = recover(group, log, on_reopen=arm)
        assert report.failed_shards() == [victim]

    recovered, report = recover(group, log)
    assert report.ok
    assert fsck_group(recovered).errors == 0

    ref_group, ref_report = recover(*_group_and_log(seed))
    assert ref_report.ok
    assert list(recovered.open_tree("ix").range_scan()) == \
        list(ref_group.open_tree("ix").range_scan())
