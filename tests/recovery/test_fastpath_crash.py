"""Crash recovery with the hot-path layer enabled.

The fastpath must be *invisible* to the recovery protocol: the same
crash subsets recover to the same contents with it on or off, and the
leaf finger never serves a page whose repairs haven't run — a freshly
reopened tree still detects every inconsistency on first use.
"""

import pytest

from repro import CrashError, CrashOnNthSync, StorageEngine, TREE_CLASSES
from repro.fastpath import overridden
from repro.storage import RecordingPolicy, SubsetEnumerator

from .helpers import PAGE, tid_for, verify_recovered

COMMITTED_KEYS = 64


def build_scenario(kind: str, *, enabled: bool, seed: int = 21):
    """Rebuild the single-split crash window with the fastpath forced on
    or off (same shape as test_exhaustive_subsets.build_scenario)."""
    with overridden(enabled):
        engine = StorageEngine.create(page_size=PAGE, seed=seed)
        tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
        for i in range(COMMITTED_KEYS):
            tree.insert(i, tid_for(i))
            if (i + 1) % 32 == 0:
                engine.sync()
        engine.sync()
        splits = tree.stats_splits
        i = COMMITTED_KEYS
        while tree.stats_splits == splits:
            tree.insert(i, tid_for(i))
            i += 1
    return engine, tree


def recovered_contents(kind, engine, *, enabled):
    with overridden(enabled):
        engine2 = StorageEngine.reopen_after_crash(engine)
        tree2 = TREE_CLASSES[kind].open(engine2, "ix")
        values = [v for v, _ in tree2.range_scan()]
        repairs = len(tree2.repair_log)
        return values, repairs


@pytest.mark.parametrize("kind", ["shadow", "reorg", "hybrid"])
def test_crash_subsets_recover_identically_on_and_off(kind):
    """For a sample of crash subsets of the split sync, the recovered
    index is element-for-element identical with the fastpath on or off,
    and the detect-on-first-use repairs fire either way."""
    probe_engine, _ = build_scenario(kind, enabled=True)
    recorder = RecordingPolicy()
    probe_engine.sync(recorder)
    batch = recorder.batches[0]

    subsets = list(SubsetEnumerator(batch, max_exhaustive=5,
                                    sample=24).subsets())
    for subset in subsets:
        if len(subset) == len(batch):
            continue
        outcomes = {}
        for enabled in (True, False):
            engine, tree = build_scenario(kind, enabled=enabled)
            with pytest.raises(CrashError):
                engine.sync(CrashOnNthSync(1, keep=list(subset)))
            outcomes[enabled] = recovered_contents(kind, engine,
                                                  enabled=enabled)
        on_values, on_repairs = outcomes[True]
        off_values, off_repairs = outcomes[False]
        assert on_values == off_values, \
            f"subset {sorted(subset)} recovered differently with fastpath"
        assert on_repairs == off_repairs, \
            f"subset {sorted(subset)}: fastpath changed the repair count"


@pytest.mark.parametrize("kind", ["shadow", "reorg", "hybrid"])
def test_fastpath_recovery_contract_full_loss(kind):
    """Worst case — the whole split batch is lost — still satisfies the
    standard recovery contract with the fastpath enabled end-to-end."""
    with overridden(True):
        engine, tree = build_scenario(kind, enabled=True)
        with pytest.raises(CrashError):
            engine.sync(CrashOnNthSync(1, keep=[]))
        tree2 = verify_recovered(kind, engine, set(range(COMMITTED_KEYS)),
                                 inserts=12)
        # the reopened tree ran with the fastpath attached the whole time
        assert tree2._fastpath is not None


@pytest.mark.parametrize("kind", ["shadow", "reorg"])
def test_finger_state_does_not_survive_reopen(kind):
    """Fingers and decoded pages are per-tree-object state: a crash
    reopen constructs a fresh tree whose first ops must all descend (and
    so hit the detection points), never resume a pre-crash finger."""
    with overridden(True):
        engine, tree = build_scenario(kind, enabled=True)
        tree.lookup(COMMITTED_KEYS - 1)   # park a finger pre-crash
        assert tree._fastpath.finger_page is not None
        with pytest.raises(CrashError):
            engine.sync(CrashOnNthSync(1, keep=[]))
        engine2 = StorageEngine.reopen_after_crash(engine)
        tree2 = TREE_CLASSES[kind].open(engine2, "ix")
        assert tree2._fastpath.finger_page is None
        assert tree2._fastpath.cache_len() == 0
        for k in range(COMMITTED_KEYS):
            assert tree2.lookup(k) == tid_for(k)
