"""Shadow-tree crash states (paper Sections 3.3.1 / 3.3.2).

The shadow split writes three pages (parent A, halves Pa and Pb) while
the pre-split page P stays untouched on stable storage.  The only
dangerous ordering is "A durable, a child not" — the child is rebuilt
from the prevPtr page.  "If A was not written, the new child page is
inaccessible, but the parent-child link is consistent."
"""

import pytest

from repro.core.detect import Action, Kind
from repro.core.nodeview import NodeView
from repro.storage.sync import tokens_match

from .helpers import build_to_split, crash_keeping, find_split, \
    verify_recovered

KIND = "shadow"


def scenario():
    engine, tree, committed, uncommitted, split = build_to_split(KIND)
    # for the shadow tree the split products are two fresh leaves; find
    # them through the parent entry that changed this window
    assert split["parent"]
    return engine, tree, committed, split


def split_leaves(tree, split):
    """The two fresh leaves of the in-flight split, low then high."""
    token = tree.engine.sync_state.token()
    fresh = []
    for page_no in range(1, tree.file.n_pages):
        buf = tree.file.pin(page_no)
        try:
            view = NodeView(buf.data, tree.page_size)
            if view.is_leaf and tokens_match(view.sync_token, token) \
                    and view.n_keys:
                fresh.append((view.min_key(), page_no))
        finally:
            tree.file.unpin(buf)
    fresh.sort()
    return [page_no for _, page_no in fresh]


@pytest.mark.parametrize("lost", ["pa", "pb", "both"])
def test_parent_durable_child_lost(lost):
    engine, tree, committed, split = scenario()
    leaves = split_leaves(tree, split)
    assert len(leaves) >= 2
    pa, pb = leaves[0], leaves[-1]
    keep = {split["parent"]}
    if lost == "pa":
        keep.add(pb)
    elif lost == "pb":
        keep.add(pa)
    crash_keeping(engine, tree, "ix", keep)
    tree2 = verify_recovered(KIND, engine, committed)
    assert any(r.action is Action.REBUILT_FROM_PREV
               for r in tree2.repair_log)


def test_children_durable_parent_lost_is_consistent():
    """'If A was not written, the new child page is inaccessible, but the
    parent-child link is consistent' — P is still on disk with every
    committed key."""
    engine, tree, committed, split = scenario()
    leaves = split_leaves(tree, split)
    crash_keeping(engine, tree, "ix", set(leaves))
    verify_recovered(KIND, engine, committed)


def test_nothing_durable():
    engine, tree, committed, split = scenario()
    crash_keeping(engine, tree, "ix", set())
    verify_recovered(KIND, engine, committed)


def test_everything_but_neighbor_durable():
    """The left neighbour's re-stamped peer pointer is lost: lookups are
    unaffected; the first scan or insert heals the link."""
    engine, tree, committed, split = scenario()
    leaves = split_leaves(tree, split)
    with tree.file.pinned(leaves[0]) as buf:
        neighbor = NodeView(buf.data, tree.page_size).left_peer
    keep = {split["parent"], *leaves}
    keep.discard(neighbor)
    crash_keeping(engine, tree, "ix", keep)
    verify_recovered(KIND, engine, committed)


def test_lost_root_restored_from_prev_root():
    """Grow the root inside a window and lose the new root image: the
    previous root is copied into its slot (Section 3.3.2)."""
    from repro import StorageEngine, TREE_CLASSES
    from .helpers import tid_for, PAGE
    engine = StorageEngine.create(page_size=PAGE, seed=3)
    tree = TREE_CLASSES[KIND].create(engine, "ix", codec="uint32")
    committed = set(range(24))
    for i in sorted(committed):
        tree.insert(i, tid_for(i))
    engine.sync()
    root_splits = tree.stats_root_splits
    i = 24
    while tree.stats_root_splits == root_splits:
        tree.insert(i, tid_for(i))
        i += 1
    new_root = tree._root_page()
    crash_keeping(engine, tree, "ix", [])   # lose everything incl. root
    tree2 = verify_recovered(KIND, engine, committed)


def test_prev_chain_survives_cascaded_splits_in_one_window():
    """Several splits of the same region inside a single window: repair
    walks the prev chain transitively."""
    from repro import StorageEngine, TREE_CLASSES
    from .helpers import tid_for, PAGE
    engine = StorageEngine.create(page_size=PAGE, seed=5)
    tree = TREE_CLASSES[KIND].create(engine, "ix", codec="uint32")
    committed = set(range(64))
    for i in sorted(committed):
        tree.insert(i, tid_for(i))
    engine.sync()
    # a long uncommitted run: many splits, all in one window
    for i in range(64, 320):
        tree.insert(i, tid_for(i))
    split = find_split(tree)
    # keep only the parent level: every fresh leaf is lost
    keep = [p for p in (split["parent"],) if p]
    crash_keeping(engine, tree, "ix", keep)
    verify_recovered(KIND, engine, committed)
