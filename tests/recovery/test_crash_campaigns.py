"""Randomized crash campaigns: many seeds, random crash subsets, full
recovery contract — plus the baseline's expected failures."""

import pytest

from repro import (
    CrashError,
    RandomSubsetCrash,
    ReproError,
    StorageEngine,
    TREE_CLASSES,
)

from .helpers import tid_for


def run_build(kind, seed, *, n=350, batch=25, page_size=512, crash_p=0.3):
    engine = StorageEngine.create(page_size=page_size, seed=seed)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    engine.crash_policy = RandomSubsetCrash(p=crash_p, seed=seed * 13 + 7)
    committed, pending = set(), []
    crashed = False
    i = 0
    while i < n and not crashed:
        try:
            tree.insert(i, tid_for(i))
        except CrashError:
            crashed = True
            break
        pending.append(i)
        i += 1
        if i % batch == 0:
            try:
                engine.sync()
                committed.update(pending)
                pending = []
            except CrashError:
                crashed = True
    return engine, committed, crashed


@pytest.mark.parametrize("kind", ["shadow", "reorg", "hybrid"])
@pytest.mark.parametrize("seed", range(20))
def test_recoverable_trees_never_lose_committed_keys(kind, seed):
    engine, committed, crashed = run_build(kind, seed)
    if not crashed:
        pytest.skip("no crash at this seed")
    engine2 = StorageEngine.reopen_after_crash(engine)
    tree2 = TREE_CLASSES[kind].open(engine2, "ix")
    missing = [k for k in committed if tree2.lookup(k) is None]
    assert not missing, sorted(missing)[:10]
    values = [v for v, _ in tree2.range_scan()]
    assert values == sorted(set(values))
    assert committed <= set(values)
    # the index accepts new work and remains sound
    for key in range(10_000, 10_050):
        tree2.insert(key, tid_for(key))
    engine2.sync()
    pairs = tree2.check(strict_tokens=False, require_peer_chain=False)
    found = {int.from_bytes(k, "big") for k, _ in pairs}
    assert committed <= found


def test_baseline_loses_data_or_corrupts():
    """The normal tree is the motivation: across the same campaign it
    must demonstrably lose committed keys or corrupt."""
    failures = 0
    crashes = 0
    for seed in range(25):
        engine, committed, crashed = run_build("normal", seed)
        if not crashed:
            continue
        crashes += 1
        engine2 = StorageEngine.reopen_after_crash(engine)
        try:
            tree2 = TREE_CLASSES["normal"].open(engine2, "ix")
            missing = [k for k in committed if tree2.lookup(k) is None]
            if missing:
                failures += 1
                continue
            values = [v for v, _ in tree2.range_scan()]
            if not committed <= set(values):
                failures += 1
        except ReproError:
            failures += 1
    assert crashes >= 10
    # the exact rate depends on how early the random policy fires; what
    # matters is that the baseline demonstrably fails where the
    # recoverable trees (same seeds, test above) never do
    assert failures >= 3, (
        f"baseline survived too often ({failures}/{crashes}); "
        "the crash harness may have stopped biting")


@pytest.mark.parametrize("kind", ["shadow", "reorg"])
def test_double_crash_epochs(kind):
    """Crash during recovery-era work, recover again."""
    for seed in (3, 7, 11):
        engine, committed, crashed = run_build(kind, seed)
        if not crashed:
            continue
        engine2 = StorageEngine.reopen_after_crash(engine)
        tree2 = TREE_CLASSES[kind].open(engine2, "ix")
        engine2.crash_policy = RandomSubsetCrash(p=0.5, seed=seed + 999)
        crashed2 = False
        pending = []
        for key in range(20_000, 20_120):
            try:
                tree2.insert(key, tid_for(key))
                pending.append(key)
                if key % 30 == 29:
                    engine2.sync()
                    committed.update(pending)
                    pending = []
            except CrashError:
                crashed2 = True
                break
        engine3 = StorageEngine.reopen_after_crash(engine2)
        tree3 = TREE_CLASSES[kind].open(engine3, "ix")
        missing = [k for k in committed if tree3.lookup(k) is None]
        assert not missing, sorted(missing)[:10]
