"""Intra-page inconsistencies: a page written to stable storage mid-insert
(the two-transactions-one-page scenario of Section 2).

The harness plants genuine mid-insert byte images on the durable store —
the exact artifact a crash during a concurrent insert would leave — and
verifies detect-on-first-use repairs them.
"""

import pytest

from repro import StorageEngine, TID, TREE_CLASSES
from repro.core import items as I
from repro.core.detect import Action, Kind
from repro.core.nodeview import NodeView

from .helpers import PAGE, tid_for


def build_with_torn_page(kind: str, *, seed: int = 31, step_index=0):
    """Build a committed tree, then overwrite one leaf's durable image
    with a mid-insert snapshot of itself."""
    engine = StorageEngine.create(page_size=PAGE, seed=seed)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    committed = set(range(0, 192, 2))
    for i in sorted(committed):
        tree.insert(i, tid_for(i))
        if i % 64 == 62:
            engine.sync()
    engine.sync()

    # pick a middle leaf and capture a torn image of an insert into it
    path = tree._descend((96).to_bytes(4, "big"))
    leaf = path[-1]
    leaf_no = leaf.page_no
    tree._unpin_path(path)

    with tree.file.pinned(leaf_no) as buf:
        view = NodeView(buf.data, tree.page_size)
        if view.prev_n_keys:
            # a real insert would run the reclamation check first (the
            # split is long since committed: case 2)
            view.reclaim_backup()
        keys_before = [int.from_bytes(k, "big") for k in view.keys()]
        new_key = keys_before[0] + 1
        assert new_key not in committed
        images = []
        slot, found = view.search(new_key.to_bytes(4, "big"))
        assert not found
        view.insert_item(slot, I.pack_leaf_item(new_key.to_bytes(4, "big"),
                                                TID(9, 9)),
                         step_hook=lambda _l: images.append(bytes(view.buf)))
    torn = images[min(step_index, len(images) - 1)]
    # the torn image reaches stable storage; the process dies
    tree.file.disk.write_page(leaf_no, torn)
    engine.dead = True
    return engine, committed, leaf_no, set(keys_before)


@pytest.mark.parametrize("kind", ["shadow", "reorg", "hybrid"])
@pytest.mark.parametrize("step_index", [0, 1, 2, 5])
def test_torn_insert_detected_and_repaired(kind, step_index):
    engine, committed, leaf_no, leaf_keys = build_with_torn_page(
        kind, step_index=step_index)
    engine2 = StorageEngine.reopen_after_crash(engine)
    tree2 = TREE_CLASSES[kind].open(engine2, "ix")
    for key in sorted(committed):
        assert tree2.lookup(key) is not None, key
    repaired = [r for r in tree2.repair_log if r.kind is Kind.INTRA_PAGE]
    if repaired:
        assert repaired[0].action is Action.DELETED_DUPLICATE
    # the repaired page is structurally clean
    buf = tree2.file.pin(leaf_no)
    try:
        view = NodeView(buf.data, tree2.page_size)
        assert view.find_intra_page_inconsistency() is None
    finally:
        tree2.file.unpin(buf)


@pytest.mark.parametrize("kind", ["shadow", "reorg"])
def test_torn_page_repair_is_one_time(kind):
    engine, committed, leaf_no, _ = build_with_torn_page(kind,
                                                         step_index=1)
    engine2 = StorageEngine.reopen_after_crash(engine)
    tree2 = TREE_CLASSES[kind].open(engine2, "ix")
    probe = min(committed)
    for _ in range(3):
        tree2.lookup(probe)
    assert tree2.repair_log.count(Kind.INTRA_PAGE) <= 1


def test_vet_only_scans_pre_crash_pages():
    """Pages written since recovery are not re-scanned — detection on
    first use costs O(1) in steady state."""
    engine = StorageEngine.create(page_size=PAGE, seed=2)
    tree = TREE_CLASSES["shadow"].create(engine, "ix", codec="uint32")
    for i in range(64):
        tree.insert(i, tid_for(i))
    engine.sync()
    vetted_before = len(tree._vetted)
    for i in range(64, 128):
        tree.insert(i, tid_for(i))
    assert tree.repair_log.count(Kind.INTRA_PAGE) == 0
    assert len(tree._vetted) >= vetted_before
