"""Exhaustive crash-subset sweep over a background-heal completion sync.

Instant restart adds one new sync to the crash surface: the one a
:class:`~repro.shard.heal.HealQueue` runs when a shard's sweep reaches
its fixpoint, making the deferred repairs durable.  A shard that dies
*there* — mid-background-heal, while siblings are serving and healing —
must be isolated exactly like a recovery-time crash: siblings finish
healing, the victim is reported failed and stays gated, and a retry
admit pass heals it from whatever page subset the crash persisted.

The sweep enumerates every subset of the victim's heal-completion sync
batch (sampled past ``max_exhaustive``), the group analogue of the
single-engine exhaustive sweep — run once per subset against the same
deterministically rebuilt crashed group.
"""

import pytest

from repro import TID, CrashError
from repro.shard import RecoveryOrchestrator, ShardedEngine
from repro.storage import (CrashOnNthSync, RandomSubsetCrash,
                           RecordingPolicy, SubsetEnumerator)
from repro.tools.fsck import fsck_group

PAGE = 512
KEYS = 180
N_SHARDS = 3


def tid_for(i):
    return TID(1 + (i >> 8), i & 0xFF)


def build_crashed_group(seed=19, crash_seed=29):
    """Deterministically build a group and crash every shard with a
    random persisted page subset (same construction every call)."""
    group = ShardedEngine.create(N_SHARDS, page_size=PAGE, seed=seed)
    tree = group.create_tree("shadow", "ix", codec="uint32")
    for k in range(KEYS):
        tree.insert(k, tid_for(k))
        if (k + 1) % 60 == 0:
            group.sync_all()
    group.sync_all()
    for index in range(N_SHARDS):
        group.shard(index).crash_policy = RandomSubsetCrash(
            p=1.0, seed=crash_seed + index)
    for j in range(KEYS, KEYS + 60):
        try:
            tree.insert(j, tid_for(j))
        except CrashError:
            continue
    for index in list(group.live_shards()):
        try:
            group.shard(index).sync()
        except CrashError:
            pass
    assert len(group.crashed_shards()) == N_SHARDS
    return group


def admit(group):
    orchestrator = RecoveryOrchestrator(admit_immediately=True)
    return orchestrator.recover(group, "ix")


@pytest.mark.parametrize("crash_seed", [29, 31, 41])
def test_every_crash_subset_of_a_heal_completion_sync_recovers(crash_seed):
    committed = set(range(KEYS))

    # probe: learn each shard's heal-completion sync batch.  The heal
    # drive itself never syncs, so the first sync after admission is the
    # completion sync.  The victim is the shard whose heal dirtied the
    # most pages — the widest crash surface to enumerate.
    probe_group, probe_report = admit(build_crashed_group(
        crash_seed=crash_seed))
    recorders = [RecordingPolicy() for _ in range(N_SHARDS)]
    for index in range(N_SHARDS):
        probe_group.shard(index).crash_policy = recorders[index]
    probe_report.heal.drain()
    assert all(len(r.batches) == 1 for r in recorders), \
        "each shard's heal must sync exactly once"
    VICTIM = max(range(N_SHARDS),
                 key=lambda i: len(recorders[i].batches[0]))
    batch = recorders[VICTIM].batches[0]
    assert len(batch) >= 2, f"unexpected completion batch {batch}"

    subsets = list(SubsetEnumerator(batch, max_exhaustive=8,
                                    sample=100).subsets())
    for subset in subsets:
        if len(subset) == len(batch):
            continue  # that sync simply succeeds
        group, report = admit(build_crashed_group(crash_seed=crash_seed))
        heal = report.heal
        assert heal.pending_shards() == list(range(N_SHARDS))
        group.shard(VICTIM).crash_policy = CrashOnNthSync(
            1, keep=list(subset))

        # the victim dies at its completion sync; the crash reaches the
        # caller (owner-thread contract) and the shard is marked failed
        with pytest.raises(CrashError):
            heal.drain(VICTIM)
        assert heal.failed_shards() == [VICTIM]
        assert VICTIM in group.crashed_shards()

        # siblings keep healing to completion, unaffected
        heal.drain()
        assert heal.done and not heal.healed
        for index in range(N_SHARDS):
            if index != VICTIM:
                assert heal.progress()[index]["done"], (
                    f"subset {sorted(subset)}: sibling {index} not healed")

        # a retry admit pass heals the victim from the persisted subset
        group2, retry = admit(group)
        assert retry.heal is not None
        assert retry.heal.pending_shards() == [VICTIM]
        retry.heal.drain()
        assert retry.heal.healed, (
            f"subset {sorted(subset)}: {retry.heal.progress()}")

        assert fsck_group(group2).errors == 0
        scanned = {key for key, _ in retry.heal.tree.range_scan()}
        missing = [key for key in committed if key not in scanned]
        assert not missing, (
            f"subset {sorted(subset)} lost committed keys {missing[:10]}")
        # the healed group accepts and persists new work
        retry.heal.tree.insert(2_000_000, tid_for(7))
        assert group2.sync_all() == []
