"""Shared machinery for crash/recovery tests."""

from __future__ import annotations

from repro import (
    CrashError,
    CrashOnceKeepingPages,
    StorageEngine,
    TID,
    TREE_CLASSES,
)
from repro.core.nodeview import NodeView
from repro.storage.sync import tokens_match

PAGE = 512


def tid_for(i: int) -> TID:
    return TID(1 + (i >> 8), i & 0xFF)


def build_to_split(kind: str, *, seed: int = 11, committed_keys: int = 96,
                   page_size: int = PAGE):
    """Build a tree with *committed_keys* synced keys, then keep inserting
    (no sync) until exactly one more leaf split happens.

    Returns ``(engine, tree, committed, uncommitted, split_info)`` where
    ``split_info`` identifies the pages of the in-flight split: the
    reorganized/old slot, the new sibling, and the parent.
    """
    engine = StorageEngine.create(page_size=page_size, seed=seed)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    committed = []
    for i in range(committed_keys):
        tree.insert(i, tid_for(i))
        if (i + 1) % 32 == 0:
            engine.sync()
    engine.sync()
    committed_set = set(committed or range(committed_keys))

    uncommitted = []
    splits_before = tree.stats_splits
    i = committed_keys
    while tree.stats_splits == splits_before:
        tree.insert(i, tid_for(i))
        uncommitted.append(i)
        i += 1
    return engine, tree, committed_set, set(uncommitted), find_split(tree)


def find_split(tree) -> dict:
    """Locate the pages of the most recent split by inspection.

    For the reorg tree: ``pa`` is the reorganized page (live + backup),
    ``pb`` its ``newPage`` sibling.  For the shadow tree: ``old`` is the
    dead pre-split page (its buffer advertises the replacement through
    ``newPage``), ``pa`` the new low half, ``pb`` the new high half.
    """
    token = tree.engine.sync_state.token()
    info = {"pa": None, "pb": None, "parent": None, "old": None}
    file = tree.file
    for page_no in range(1, file.n_pages):
        buf = file.pin(page_no)
        try:
            view = NodeView(buf.data, tree.page_size)
            if not tokens_match(view.sync_token, token) or not view.is_leaf:
                continue
            if view.prev_n_keys:                    # reorg Pa
                info["pa"] = page_no
                info["pb"] = view.new_page or None
            elif view.new_page:                     # shadow dead P
                info["old"] = page_no
                info["pa"] = view.new_page
        finally:
            file.unpin(buf)
    if info["pa"] is not None and info["pb"] is None:
        buf = file.pin(info["pa"])
        try:
            view = NodeView(buf.data, tree.page_size)
            if tokens_match(view.sync_token, token) and view.right_peer:
                info["pb"] = view.right_peer
        finally:
            file.unpin(buf)
    # the parent is whatever internal page routes to pa
    root = tree._root_page()
    stack = [root]
    target = info["pa"]
    while stack and target:
        page_no = stack.pop()
        buf = file.pin(page_no)
        try:
            view = NodeView(buf.data, tree.page_size)
            if view.is_leaf:
                continue
            children = [view.child_at(i) for i in range(view.n_keys)]
            if target in children:
                info["parent"] = page_no
            stack.extend(children)
        finally:
            file.unpin(buf)
    return info


def crash_keeping(engine, tree, file_name: str, keep_pages) -> None:
    """Sync with a policy that persists only *keep_pages* of this file
    (control-file pages always survive: they are written synchronously)."""
    policy = CrashOnceKeepingPages({(file_name, p) for p in keep_pages})
    try:
        engine.sync(policy)
    except CrashError:
        return
    raise AssertionError("expected the sync to crash")


def verify_recovered(kind: str, engine, committed, *,
                     insert_from: int = 10_000,
                     inserts: int = 60) -> None:
    """The recovery contract: reopen, find every committed key, accept new
    work, and end structurally sound."""
    engine2 = StorageEngine.reopen_after_crash(engine)
    tree2 = TREE_CLASSES[kind].open(engine2, "ix")
    missing = [k for k in committed if tree2.lookup(k) is None]
    assert not missing, f"committed keys lost: {sorted(missing)[:10]}"
    values = [v for v, _ in tree2.range_scan()]
    assert values == sorted(set(values)), "scan unsorted or duplicated"
    assert committed <= set(values), "scan lost committed keys"
    for key in range(insert_from, insert_from + inserts):
        tree2.insert(key, tid_for(key))
    engine2.sync()
    pairs = tree2.check(strict_tokens=False, require_peer_chain=False)
    found = {int.from_bytes(k, "big") for k, _ in pairs}
    assert committed <= found
    assert set(range(insert_from, insert_from + inserts)) <= found
    return tree2
