"""Cascaded-split crash states: a leaf split that overflows its parent in
the same window.

Regression guard for a subtle no-overwrite violation: on the parent-
overflow path, the child redirection (split step 5) must materialize only
in the parent's split products, never on the parent's own buffer — that
buffer's durable image is the recovery `prev`, and a prev with a narrowed
K1 and no K2 silently loses the other half's committed keys.
"""

import pytest

from repro import (
    CrashError,
    CrashOnceKeepingPages,
    StorageEngine,
    TID,
    TREE_CLASSES,
)
from repro.core.nodeview import NodeView
from repro.storage import RecordingPolicy, SubsetEnumerator

from .helpers import PAGE, tid_for


def build_cascade(kind: str, seed: int = 5):
    """Committed base, then keep inserting (no sync) until a split
    cascades into the parent level (root split count moves or the parent
    page count grows)."""
    engine = StorageEngine.create(page_size=PAGE, seed=seed)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    committed = set()
    i = 0
    # grow until height 3 so a parent (level-1) split is not a root split
    while tree.height < 3:
        tree.insert(i, tid_for(i))
        committed.add(i)
        i += 1
        if i % 64 == 0:
            engine.sync()
    engine.sync()

    # count level-1 pages, then insert until one of them splits
    def level1_count():
        count = 0
        for page_no in range(1, tree.file.n_pages):
            with tree.file.pinned(page_no) as buf:
                view = NodeView(buf.data, PAGE)
                if view.page_type == 2 and view.level == 1:
                    count += 1
        return count

    base = level1_count()
    while level1_count() == base:
        tree.insert(i, tid_for(i))
        i += 1
    return engine, tree, committed


@pytest.mark.parametrize("kind", ["shadow", "hybrid"])
def test_retired_pages_never_modified_after_retirement(kind):
    # (the reorg tree remaps rather than retiring pages; its equivalent
    # guarantee — the backup is the true pre-split image — is covered in
    # tests/core/test_reorg_split.py)
    """Once a page is retired by a split (awaiting deferred free, i.e. a
    live recovery source), its item content must never change again —
    "the keys on P are neither modified nor overwritten"."""
    engine, tree, committed = build_cascade(kind)
    deferred = [e.page_no for e in tree.file.freelist._deferred]
    assert deferred, "cascade should retire at least one page"

    def item_region(page_no):
        buf = tree.file.pin(page_no)
        try:
            # header fields like newPage/token may be restamped; the
            # guarantee is about the keys — compare the item region
            view = NodeView(buf.data, PAGE)
            return bytes(buf.data[view.lower:])
        finally:
            tree.file.unpin(buf)

    before = {p: item_region(p) for p in deferred}
    # keep working in the same window: more splits, more cascades
    i = 100_000
    splits = tree.stats_splits
    while tree.stats_splits < splits + 6:
        tree.insert(i, tid_for(i))
        i += 1
    for page_no, image in before.items():
        assert item_region(page_no) == image, (
            f"retired page {page_no} was modified after retirement")


@pytest.mark.parametrize("kind", ["shadow", "reorg", "hybrid"])
@pytest.mark.parametrize("seed", [5, 9, 23])
def test_every_crash_subset_of_a_cascaded_split(kind, seed):
    """Exhaustive (or sampled) subset sweep over the sync that commits a
    leaf split plus its parent split."""
    probe_engine, probe_tree, committed = build_cascade(kind, seed)
    recorder = RecordingPolicy()
    probe_engine.sync(recorder)
    batch = recorder.batches[0]

    from repro import CrashOnNthSync
    subsets = list(SubsetEnumerator(batch, max_exhaustive=8,
                                    sample=50, seed=seed).subsets())
    for subset in subsets:
        if len(subset) == len(batch):
            continue
        engine, tree, committed2 = build_cascade(kind, seed)
        with pytest.raises(CrashError):
            engine.sync(CrashOnNthSync(1, keep=list(subset)))
        engine2 = StorageEngine.reopen_after_crash(engine)
        tree2 = TREE_CLASSES[kind].open(engine2, "ix")
        missing = [k for k in committed2 if tree2.lookup(k) is None]
        assert not missing, (
            f"subset {sorted(p[1] for p in subset)} lost "
            f"{sorted(missing)[:6]}")
