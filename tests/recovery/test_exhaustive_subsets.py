"""Exhaustive crash-subset enumeration over a single split sync.

Stronger than anything a real fsync testbed can do: rebuild the same
split scenario for *every* subset of the sync batch, crash persisting
exactly that subset, and verify recovery.  This covers all of the paper's
named cases and every unnamed combination in one sweep.
"""

import pytest

from repro import CrashError, CrashOnNthSync, StorageEngine, TID, \
    TREE_CLASSES
from repro.storage import RecordingPolicy, SubsetEnumerator

from .helpers import PAGE, tid_for, verify_recovered

COMMITTED_KEYS = 64


def build_scenario(kind: str, seed: int = 21):
    """Deterministically rebuild the tree to the moment where the next
    sync commits exactly one in-flight leaf split."""
    engine = StorageEngine.create(page_size=PAGE, seed=seed)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    for i in range(COMMITTED_KEYS):
        tree.insert(i, tid_for(i))
        if (i + 1) % 32 == 0:
            engine.sync()
    engine.sync()
    splits = tree.stats_splits
    i = COMMITTED_KEYS
    while tree.stats_splits == splits:
        tree.insert(i, tid_for(i))
        i += 1
    return engine, tree


@pytest.mark.parametrize("kind", ["shadow", "reorg", "hybrid"])
def test_every_crash_subset_recovers(kind):
    probe_engine, probe_tree = build_scenario(kind)
    recorder = RecordingPolicy()
    probe_engine.sync(recorder)
    batch = recorder.batches[0]
    assert 2 <= len(batch) <= 12, f"unexpected batch size {len(batch)}"

    committed = set(range(COMMITTED_KEYS))
    subsets = list(SubsetEnumerator(batch).subsets())
    assert len(subsets) == 2 ** len(batch)
    # skip the full subset (that sync simply succeeds)
    for subset in subsets:
        if len(subset) == len(batch):
            continue
        engine, tree = build_scenario(kind)
        with pytest.raises(CrashError):
            engine.sync(CrashOnNthSync(1, keep=list(subset)))
        verify_recovered(kind, engine, committed, inserts=12)


@pytest.mark.parametrize("kind", ["shadow", "reorg"])
def test_every_crash_subset_of_root_split(kind):
    """Same sweep over a window whose split grows the root."""
    def build(seed=9):
        engine = StorageEngine.create(page_size=PAGE, seed=seed)
        tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
        for i in range(24):
            tree.insert(i, tid_for(i))
        engine.sync()
        i = 24
        while tree.stats_root_splits == 0:
            tree.insert(i, tid_for(i))
            i += 1
        return engine, tree

    probe_engine, _ = build()
    recorder = RecordingPolicy()
    probe_engine.sync(recorder)
    batch = recorder.batches[0]
    committed = set(range(24))
    for subset in SubsetEnumerator(batch, max_exhaustive=10,
                                   sample=100).subsets():
        if len(subset) == len(batch):
            continue
        engine, tree = build()
        with pytest.raises(CrashError):
            engine.sync(CrashOnNthSync(1, keep=list(subset)))
        verify_recovered(kind, engine, committed, inserts=12)
