"""Exhaustive crash-subset enumeration over a single split sync.

Stronger than anything a real fsync testbed can do: rebuild the same
split scenario for *every* subset of the sync batch, crash persisting
exactly that subset, and verify recovery.  This covers all of the paper's
named cases and every unnamed combination in one sweep.
"""

import pytest

from repro import CrashError, CrashOnNthSync, StorageEngine, TID, \
    TREE_CLASSES
from repro.storage import RecordingPolicy, SubsetEnumerator

from .helpers import PAGE, tid_for, verify_recovered

COMMITTED_KEYS = 64


def build_scenario(kind: str, seed: int = 21):
    """Deterministically rebuild the tree to the moment where the next
    sync commits exactly one in-flight leaf split."""
    engine = StorageEngine.create(page_size=PAGE, seed=seed)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    for i in range(COMMITTED_KEYS):
        tree.insert(i, tid_for(i))
        if (i + 1) % 32 == 0:
            engine.sync()
    engine.sync()
    splits = tree.stats_splits
    i = COMMITTED_KEYS
    while tree.stats_splits == splits:
        tree.insert(i, tid_for(i))
        i += 1
    return engine, tree


@pytest.mark.parametrize("kind", ["shadow", "reorg", "hybrid"])
def test_every_crash_subset_recovers(kind):
    probe_engine, probe_tree = build_scenario(kind)
    recorder = RecordingPolicy()
    probe_engine.sync(recorder)
    batch = recorder.batches[0]
    assert 2 <= len(batch) <= 12, f"unexpected batch size {len(batch)}"

    committed = set(range(COMMITTED_KEYS))
    subsets = list(SubsetEnumerator(batch).subsets())
    assert len(subsets) == 2 ** len(batch)
    # skip the full subset (that sync simply succeeds)
    for subset in subsets:
        if len(subset) == len(batch):
            continue
        engine, tree = build_scenario(kind)
        with pytest.raises(CrashError):
            engine.sync(CrashOnNthSync(1, keep=list(subset)))
        verify_recovered(kind, engine, committed, inserts=12)


@pytest.mark.parametrize("kind", ["shadow", "reorg"])
def test_every_crash_subset_of_root_split(kind):
    """Same sweep over a window whose split grows the root."""
    def build(seed=9):
        engine = StorageEngine.create(page_size=PAGE, seed=seed)
        tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
        for i in range(24):
            tree.insert(i, tid_for(i))
        engine.sync()
        i = 24
        while tree.stats_root_splits == 0:
            tree.insert(i, tid_for(i))
            i += 1
        return engine, tree

    probe_engine, _ = build()
    recorder = RecordingPolicy()
    probe_engine.sync(recorder)
    batch = recorder.batches[0]
    committed = set(range(24))
    for subset in SubsetEnumerator(batch, max_exhaustive=10,
                                   sample=100).subsets():
        if len(subset) == len(batch):
            continue
        engine, tree = build()
        with pytest.raises(CrashError):
            engine.sync(CrashOnNthSync(1, keep=list(subset)))
        verify_recovered(kind, engine, committed, inserts=12)


# ---------------------------------------------------------------------------
# the same sweep over the extendible hash (bucket split, directory doubling)
# ---------------------------------------------------------------------------

#: committed-key counts placing the first post-commit event: 64 puts a
#: directory-doubling split in flight; 65 a pure bucket split (the
#: doubling at key 64 lands inside the committed, synced prefix)
HASH_COMMITTED = {"split": 65, "double": 64}


def build_hash_scenario(*, until: str, seed: int = 21):
    """Rebuild the hash index to the moment where the next sync commits
    an in-flight bucket split (``until="split"``) or a directory doubling
    (``until="double"``)."""
    from repro.hash.extendible import ExtendibleHashIndex

    committed_keys = HASH_COMMITTED[until]
    engine = StorageEngine.create(page_size=PAGE, seed=seed)
    index = ExtendibleHashIndex.create(engine, "hx", codec="uint32")
    for i in range(committed_keys):
        index.insert(i, tid_for(i))
        if (i + 1) % 32 == 0:
            engine.sync()
    engine.sync()
    splits = index.stats_bucket_splits
    doublings = index.stats_directory_doublings
    i = committed_keys
    while index.stats_bucket_splits == splits:
        index.insert(i, tid_for(i))
        i += 1
    doubled = index.stats_directory_doublings > doublings
    assert doubled == (until == "double"), \
        "scenario rot: the in-flight split's kind moved; re-probe the " \
        "committed-key counts"
    return engine, index


def verify_hash_recovered(engine, committed, *, inserts: int = 12) -> None:
    """The hash recovery contract: reopen, find every committed key,
    accept new work, and end structurally sound."""
    from repro.hash.extendible import ExtendibleHashIndex

    engine2 = StorageEngine.reopen_after_crash(engine)
    index2 = ExtendibleHashIndex.open(engine2, "hx")
    missing = [k for k in committed if index2.lookup(k) is None]
    assert not missing, f"committed keys lost: {sorted(missing)[:10]}"
    for key in range(10_000, 10_000 + inserts):
        index2.insert(key, tid_for(key))
    engine2.sync()
    found = {int.from_bytes(k, "big") for k, _ in index2.check()}
    assert committed <= found
    assert set(range(10_000, 10_000 + inserts)) <= found


@pytest.mark.parametrize("until", ["split", "double"])
def test_every_hash_crash_subset_recovers(until):
    """Every subset of the sync batch that commits an in-flight bucket
    split / directory doubling must recover — the paper's Section 1 claim
    that the techniques carry to extensible hash indices, swept the same
    way as the B-link splits."""
    probe_engine, _ = build_hash_scenario(until=until)
    recorder = RecordingPolicy()
    probe_engine.sync(recorder)
    batch = recorder.batches[0]
    assert len(batch) >= 2, f"unexpected batch size {len(batch)}"

    committed = set(range(HASH_COMMITTED[until]))
    for subset in SubsetEnumerator(batch, max_exhaustive=8,
                                   sample=120).subsets():
        if len(subset) == len(batch):
            continue
        engine, _ = build_hash_scenario(until=until)
        with pytest.raises(CrashError):
            engine.sync(CrashOnNthSync(1, keep=list(subset)))
        verify_hash_recovered(engine, committed)
