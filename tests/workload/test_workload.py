"""Workload generators, the AM-only runner, and the report formatter."""

import pytest

from repro.workload import (
    WISCONSIN_AM_FRACTION,
    ascending,
    build_tree,
    descending,
    duplicate_values,
    format_table1,
    interleaved_batches,
    normalized_cell,
    random_permutation,
    repeat,
    run_lookups,
    skewed,
    uniform_lookups,
    wisconsin_context,
)


# -- generators ------------------------------------------------------------

def test_ascending_descending():
    assert list(ascending(5)) == [0, 1, 2, 3, 4]
    assert list(ascending(3, start=10, step=2)) == [10, 12, 14]
    assert list(descending(5)) == [5, 4, 3, 2, 1]


def test_random_permutation_complete_and_seeded():
    a = random_permutation(100, seed=1)
    b = random_permutation(100, seed=1)
    c = random_permutation(100, seed=2)
    assert a == b != c
    assert sorted(a) == list(range(100))


def test_uniform_lookups_in_range():
    probes = uniform_lookups(500, 100, seed=3)
    assert len(probes) == 500
    assert all(0 <= p < 100 for p in probes)


def test_skewed_respects_hotset():
    keys = skewed(400, hot_fraction=0.1, hot_probability=0.9,
                  key_range=10_000, seed=1)
    assert len(set(keys)) == 400
    hot = sum(1 for k in keys if k < 1000)
    assert hot > 200   # well over half land in the hot tenth


def test_duplicate_values_are_unique_composites():
    keys = duplicate_values(200, distinct=10, seed=1)
    assert len(set(keys)) == 200
    assert all(len(k) == 12 for k in keys)   # 4-byte value + 8-byte oid


def test_interleaved_batches_round_robin():
    merged = list(interleaved_batches([[1, 2, 3, 4], [10, 20]], batch=2))
    assert merged == [1, 2, 10, 20, 3, 4]
    assert sorted(interleaved_batches([[1], [2], [3]], batch=5)) == [1, 2, 3]


# -- runner ------------------------------------------------------------------

@pytest.mark.parametrize("kind", ["normal", "shadow"])
def test_build_tree_reports_am_time(kind):
    result, tree = build_tree(kind, ascending(600), page_size=512,
                              sync_every=100)
    assert result.n_ops == 600
    assert result.am_seconds > 0
    assert result.splits == tree.stats_splits > 0
    assert result.syncs >= 6
    assert len(tree.check()) == 600


def test_run_lookups_counts_hits():
    _, tree = build_tree("shadow", ascending(500), page_size=512)
    result = run_lookups(tree, [1, 2, 3, 9999])
    assert result.extra["hits"] == 3
    assert result.operation == "lookup"


def test_repeat_series_statistics():
    series = repeat(lambda rep: build_tree(
        "normal", ascending(200), page_size=512, seed=rep)[0],
        repetitions=3)
    assert len(series.results) == 3
    assert series.mean > 0
    assert series.stdev >= 0
    assert series.stdev_pct >= 0


# -- report ---------------------------------------------------------------------

def test_normalized_cell_format():
    assert normalized_cell(2.0, 1.0) == "2.000 s (2.000)"
    assert "1.000" in normalized_cell(1.5, 1.5)


def test_format_table1_layout():
    table = format_table1(
        {"normal": {100: 1.0, 200: 2.0},
         "shadow": {100: 1.02, 200: 2.1}},
        [100, 200], title="Inserts")
    lines = table.splitlines()
    assert lines[0] == "Inserts"
    assert "normal" in table and "shadow" in table
    assert "(1.000)" in table and "(1.020)" in table


def test_wisconsin_context_math():
    text = wisconsin_context(0.047)
    assert "4.7%" in text
    assert f"{0.047 * WISCONSIN_AM_FRACTION * 100:.2f}%" in text


# -- zipfian ---------------------------------------------------------------

def test_zipfian_draws_in_range_and_seeded():
    from repro.workload import zipfian
    draws = zipfian(2_000, 500, seed=7)
    assert len(draws) == 2_000
    assert all(0 <= k < 500 for k in draws)
    assert draws == zipfian(2_000, 500, seed=7)
    assert draws != zipfian(2_000, 500, seed=8)


def test_zipfian_theta_controls_skew():
    from collections import Counter

    from repro.workload import zipfian
    skewed_draws = Counter(zipfian(4_000, 200, theta=0.99, seed=1))
    flat_draws = Counter(zipfian(4_000, 200, theta=0.0, seed=1))
    top_skewed = skewed_draws.most_common(1)[0][1]
    top_flat = flat_draws.most_common(1)[0][1]
    # theta=0.99 concentrates mass on a hot key; theta=0 is ~uniform
    assert top_skewed > 3 * top_flat
    assert len(flat_draws) > len(skewed_draws)


def test_zipfian_keys_distinct_and_scattered():
    from repro.workload import zipfian_keys
    keys = zipfian_keys(300, seed=5)
    assert len(keys) == len(set(keys)) == 300
    # the multiplicative hash scatters hot ranks: the first (hottest)
    # keys must not be a contiguous run
    head = sorted(keys[:10])
    assert head[-1] - head[0] > 10


def test_build_sharded_tree_round_trips():
    from repro.workload import (build_sharded_tree, run_sharded_lookups,
                                zipfian_keys)
    keys = zipfian_keys(150, seed=3)
    result, tree = build_sharded_tree("shadow", keys, n_shards=3,
                                      page_size=512, batch=64)
    assert result.extra["n_shards"] == 3
    assert sum(result.extra["shard_keys"]) == 150
    probes = keys[:50] + [max(keys) + 1]
    lookups = run_sharded_lookups(tree, probes, batch=32)
    assert lookups.extra["hits"] == 50
    tree.group.shutdown()
