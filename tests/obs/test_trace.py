"""Trace log: typed events, ring buffer, overflow-surviving counts."""

import pytest

from repro.obs import EVENT_TYPES, TraceLog, get_trace, scoped_trace


def test_emit_and_read_back():
    log = TraceLog()
    log.emit("sync", token=4, duration=0.25, pages=6)
    (ev,) = log.events()
    assert ev.etype == "sync"
    # trace-event field equality, not a sync-token freshness check
    assert ev.token == 4  # lint: disable=R004
    assert ev.detail["pages"] == 6
    d = ev.to_dict()
    assert d["etype"] == "sync" and d["detail"] == {"pages": 6}


def test_unknown_event_type_rejected():
    log = TraceLog()
    with pytest.raises(ValueError):
        log.emit("not-a-thing")


def test_filter_by_type():
    log = TraceLog()
    log.emit("split", page=3)
    log.emit("sync")
    log.emit("split", page=9)
    assert [e.page for e in log.events("split")] == [3, 9]


def test_ring_overflow_keeps_counts():
    log = TraceLog(capacity=4)
    for _ in range(10):
        log.emit("evict", page=1)
    assert len(log) == 4              # ring keeps only the tail
    assert log.counts()["evict"] == 10  # tallies survive overflow
    seqs = [e.seq for e in log.events()]
    assert seqs == sorted(seqs)


def test_clear_resets_events_and_counts():
    log = TraceLog()
    log.emit("crash")
    log.clear()
    assert len(log) == 0
    assert log.counts() == {}


def test_scoped_trace_isolates():
    outer = get_trace()
    with scoped_trace() as log:
        assert get_trace() is log
        get_trace().emit("repair", page=1)
        assert log.counts() == {"repair": 1}
    assert get_trace() is outer


def test_event_types_cover_the_documented_schema():
    assert {"sync", "crash", "split", "repair", "evict", "latch_wait",
            "fsck_finding", "race_finding", "shard_crash", "group_sync",
            "shard_recovery", "heal_progress",
            "serve_commit", "wal_partition",
            "wal_replay"} == set(EVENT_TYPES)
