"""Metrics registry: counters, gauges, histograms, snapshots, diffs."""

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    TIME_BUCKETS,
    MetricsRegistry,
    diff_snapshots,
    get_registry,
    metric_key,
    render_text,
    scoped_registry,
)


def test_metric_key_sorts_labels():
    assert metric_key("x", {}) == "x"
    assert (metric_key("x", {"b": 2, "a": 1})
            == "x[a=1,b=2]")


def test_counter_increments():
    reg = MetricsRegistry()
    c = reg.counter("ops")
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("depth")
    g.set(10)
    g.inc(2)
    g.dec(5)
    assert g.value == 7


def test_histogram_buckets_and_summary():
    reg = MetricsRegistry()
    h = reg.histogram("lat", bounds=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0):
        h.observe(v)
    s = h.summary()
    assert s["count"] == 3
    assert s["min"] == 0.5 and s["max"] == 50.0
    assert s["buckets"] == [1, 1, 1]      # <=1, <=10, overflow
    assert s["sum"] == pytest.approx(55.5)


def test_snapshot_aggregates_same_name_and_labels():
    reg = MetricsRegistry()
    a = reg.counter("tree.splits", kind="shadow")
    b = reg.counter("tree.splits", kind="shadow")   # second instance
    c = reg.counter("tree.splits", kind="reorg")
    a.inc(2)
    b.inc(3)
    c.inc(7)
    snap = reg.snapshot()
    assert snap["counters"]["tree.splits[kind=shadow]"] == 5
    assert snap["counters"]["tree.splits[kind=reorg]"] == 7


def test_snapshot_merges_histograms():
    reg = MetricsRegistry()
    h1 = reg.histogram("lat", bounds=(1.0,))
    h2 = reg.histogram("lat", bounds=(1.0,))
    h1.observe(0.5)
    h2.observe(2.0)
    merged = reg.snapshot()["histograms"]["lat"]
    assert merged["count"] == 2
    assert merged["buckets"] == [1, 1]


def test_diff_snapshots_drops_zero_deltas():
    reg = MetricsRegistry()
    a = reg.counter("a")
    b = reg.counter("b")
    a.inc()
    before = reg.snapshot()
    a.inc(2)
    diff = diff_snapshots(before, reg.snapshot())
    assert diff["counters"] == {"a": 2}
    assert "b" not in diff["counters"]
    assert b.value == 0


def test_scoped_registry_isolates():
    outer = get_registry()
    with scoped_registry() as reg:
        assert get_registry() is reg
        assert get_registry() is not outer
        get_registry().counter("only.inner").inc()
        assert reg.snapshot()["counters"]["only.inner"] == 1
    assert get_registry() is outer
    assert "only.inner" not in outer.snapshot()["counters"]


def test_render_text_mentions_every_section():
    reg = MetricsRegistry()
    reg.counter("c", k="v").inc()
    reg.gauge("g").set(3)
    reg.histogram("h").observe(0.001)
    text = render_text(reg.snapshot())
    assert "c[k=v]" in text
    assert "g" in text and "h" in text


def test_default_bounds_are_sorted():
    assert list(TIME_BUCKETS) == sorted(TIME_BUCKETS)
    assert list(COUNT_BUCKETS) == sorted(COUNT_BUCKETS)
