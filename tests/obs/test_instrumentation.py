"""End-to-end instrumentation: the storage stack feeds the registry."""

import json

import pytest

from repro import CrashError, StorageEngine, TID, TREE_CLASSES
from repro.core.concurrency import SplitLock
from repro.core.detect import Action, DetectionReport, Kind, RepairLog
from repro.obs import scoped_registry, scoped_trace
from repro.storage import CrashOnceKeepingPages
from repro.tools.fsck import FsckReport
from repro.tools.stats import main as stats_main


def build(kind="shadow", n=200, **engine_kw):
    engine = StorageEngine.create(page_size=512, seed=3, **engine_kw)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    for i in range(n):
        tree.insert(i, TID(1, i % 100))
        if (i + 1) % 64 == 0:
            engine.sync()
    engine.sync()
    return engine, tree


def test_buffer_pool_feeds_registry():
    with scoped_registry() as reg, scoped_trace():
        engine, tree = build(pool_capacity=4)
        tree.lookup(123)
        counters = reg.snapshot()["counters"]
        assert counters["buffer_pool.hits[file=ix]"] == tree.file.pool.stats_hits
        assert counters["buffer_pool.misses[file=ix]"] > 0
        assert counters["buffer_pool.evictions[file=ix]"] > 0


def test_eviction_emits_trace_events():
    with scoped_registry(), scoped_trace() as log:
        engine, tree = build(pool_capacity=4)
        evicts = log.events("evict")
        assert evicts, "capacity-4 pool under a 200-key build must evict"
        assert all(e.file == "ix" for e in evicts)


def test_engine_sync_metrics_and_trace():
    with scoped_registry() as reg, scoped_trace() as log:
        engine, tree = build()
        counters = reg.snapshot()["counters"]
        assert counters["engine.syncs.completed"] == engine.stats_syncs > 0
        assert counters["engine.sync.pages_written"] > 0
        assert counters["engine.sync.counter_advances"] > 0
        hists = reg.snapshot()["histograms"]
        assert hists["engine.sync.seconds"]["count"] == engine.stats_syncs
        syncs = log.events("sync")
        assert len(syncs) == engine.stats_syncs
        assert all(e.token is not None and e.duration is not None
                   for e in syncs)


def test_crashed_sync_counts_separately():
    with scoped_registry() as reg, scoped_trace() as log:
        engine, tree = build()
        completed = engine.stats_syncs
        tree.insert(10_000, TID(9, 9))
        with pytest.raises(CrashError):
            engine.sync(CrashOnceKeepingPages(set()))
        assert engine.stats_syncs == completed          # not inflated
        assert engine.stats_crashed_syncs == 1
        counters = reg.snapshot()["counters"]
        assert counters["engine.syncs.crashed"] == 1
        assert len(log.events("crash")) == 1


def test_splits_counted_timed_and_traced():
    with scoped_registry() as reg, scoped_trace() as log:
        engine, tree = build(kind="reorg")
        snap = reg.snapshot()
        n = snap["counters"]["tree.splits[kind=reorg]"]
        assert n == tree.stats_splits > 0
        assert snap["histograms"]["tree.split.seconds[kind=reorg]"][
            "count"] > 0
        splits = log.events("split")
        assert splits and all(e.detail["technique"] == "reorg"
                              for e in splits)


def test_repair_log_binding_feeds_registry_and_trace():
    with scoped_registry() as reg, scoped_trace() as log:
        rlog = RepairLog()
        rlog.bind_owner(kind="shadow", file_name="ix",
                        token_source=lambda: 42)
        rlog.add(DetectionReport(Kind.ZEROED_CHILD, 7,
                                 Action.REBUILT_FROM_PREV),
                 duration=0.005)
        snap = reg.snapshot()
        assert snap["counters"][
            "tree.repairs[kind=shadow,repair=zeroed-child]"] == 1
        assert snap["histograms"][
            "tree.repair.seconds[kind=shadow,repair=zeroed-child]"][
            "count"] == 1
        (ev,) = log.events("repair")
        # trace-event field equality, not a sync-token freshness check
        assert ev.token == 42 and ev.page == 7  # lint: disable=R004
        assert ev.detail["action"] == "rebuilt-from-prev"
        assert rlog.latency_summary()["zeroed-child"]["count"] == 1


def test_unbound_repair_log_stays_silent():
    with scoped_registry() as reg, scoped_trace() as log:
        rlog = RepairLog()
        rlog.add(DetectionReport(Kind.LOST_ROOT, 1, Action.VERIFIED_ONLY))
        assert len(rlog) == 1
        assert reg.snapshot()["counters"] == {}
        assert len(log) == 0


def test_split_lock_acquisitions_counted():
    with scoped_registry() as reg, scoped_trace():
        lock = SplitLock()
        with lock:
            pass
        with lock:
            pass
        assert lock.stats_acquisitions == 2
        assert reg.snapshot()["counters"]["split_lock.acquisitions"] == 2


def test_fsck_findings_counted_and_traced():
    with scoped_registry() as reg, scoped_trace() as log:
        report = FsckReport()
        report.add("error", 3, "zeroed page")
        report.add("warn", 4, "stale token")
        report.add("error", 5, "orphan")
        counters = reg.snapshot()["counters"]
        assert counters["fsck.findings[severity=error]"] == 2
        assert counters["fsck.findings[severity=warn]"] == 1
        assert len(log.events("fsck_finding")) == 3


def test_stats_cli_json_reports_nonzero_core_metrics(capsys):
    with scoped_registry(), scoped_trace():
        rc = stats_main(["--json", "--kinds", "shadow", "--keys", "64"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    counters = doc["metrics"]["counters"]
    assert counters["tree.splits[kind=shadow]"] > 0
    assert counters["engine.syncs.completed"] > 0
    assert any(key.startswith("tree.repairs[kind=shadow")
               for key in counters)
    assert any(key.startswith("tree.repair.seconds[kind=shadow")
               for key in doc["metrics"]["histograms"])
    assert doc["trace"]["counts"]["crash"] > 0
