"""Deterministic schedule explorer: replay determinism, seed diversity,
mutation catching, stuck detection, and crash-snapshot recovery."""

# worker bodies take bare latches (no try/finally) to create schedule
# points, and the mutant tree deliberately omits the split lock
# (R014 is the path-sensitive form of the same latch discipline)
# lint: disable=R006,R009,R014

import pytest

from repro import StorageEngine, TREE_CLASSES
from repro.core.concurrency import ConcurrentTree, LatchManager
from repro.analysis.races import (
    SCENARIOS,
    ScheduleExplorer,
    run_scenario,
)
from repro.analysis.races.runtime import race_checked
from repro.analysis.races.scenarios import ReaderVsSplitter, WriterVsWriter

from ..conftest import tid_for


# ---------------------------------------------------------------------------
# the controller itself
# ---------------------------------------------------------------------------

def test_single_worker_runs_to_completion():
    ran = []
    explorer = ScheduleExplorer(seed=0)
    result = explorer.run([("only", lambda: ran.append(True))])
    assert ran == [True]
    assert result.ok
    assert result.decisions and set(result.decisions) == {"only"}


def test_workers_interleave_at_schedule_points():
    """Two workers taking read latches interleave: the decision sequence
    must mix both names (one worker never runs to completion before the
    other starts)."""
    latches = LatchManager()

    def op(page):
        def body():
            for _ in range(5):
                latches.acquire_read(page)
                latches.release(page)
        return body

    result = ScheduleExplorer(seed=3).run([("a", op(1)), ("b", op(2))])
    assert result.ok
    first_a, last_a = (result.decisions.index("a"),
                       len(result.decisions) - 1
                       - result.decisions[::-1].index("a"))
    assert any(d == "b" for d in result.decisions[first_a:last_a]), \
        "scheduler never interleaved the workers"


def test_same_seed_same_decisions():
    def make_ops():
        latches = LatchManager()

        def op(page):
            def body():
                for _ in range(4):
                    latches.acquire_read(page)
                    latches.release(page)
            return body
        return [("a", op(1)), ("b", op(2))]

    first = ScheduleExplorer(seed=11).run(make_ops())
    second = ScheduleExplorer(seed=11).run(make_ops())
    assert first.decisions == second.decisions


def test_different_seeds_explore_different_interleavings():
    def make_ops():
        latches = LatchManager()

        def op(page):
            def body():
                for _ in range(6):
                    latches.acquire_read(page)
                    latches.release(page)
            return body
        return [("a", op(1)), ("b", op(2))]

    runs = {tuple(ScheduleExplorer(seed=s).run(make_ops()).decisions)
            for s in range(6)}
    assert len(runs) > 1, "every seed produced the identical schedule"


def test_worker_exception_becomes_finding():
    def boom():
        raise ValueError("deliberate")

    result = ScheduleExplorer(seed=0).run([("boom", boom)])
    assert not result.ok
    (finding,) = result.findings
    assert finding.kind == "exception"
    assert "deliberate" in finding.message


def test_contended_latch_resolves_cooperatively():
    """A writer and a reader on the same page: the loser parks at a
    ``*_wait`` point and the schedule still drains both workers."""
    latches = LatchManager()
    done = []

    def writer():
        latches.acquire_write(1)
        latches.release(1)
        done.append("w")

    def reader():
        latches.acquire_read(1)
        latches.release(1)
        done.append("r")

    result = ScheduleExplorer(seed=2).run([("w", writer), ("r", reader)])
    assert result.ok
    assert sorted(done) == ["r", "w"]


def test_step_cap_reports_stuck():
    latches = LatchManager()
    latches.acquire_write(9)   # the main thread holds it; never released

    def blocked():
        latches.acquire_read(9)

    try:
        result = ScheduleExplorer(seed=0, max_steps=50).run(
            [("blocked", blocked)])
        assert not result.ok
        assert any(f.kind == "stuck" for f in result.findings)
    finally:
        latches.release(9)


# ---------------------------------------------------------------------------
# scenarios under the explorer
# ---------------------------------------------------------------------------

def test_scenario_run_is_deterministic():
    a = run_scenario(ReaderVsSplitter("shadow"), seed=4)
    b = run_scenario(ReaderVsSplitter("shadow"), seed=4)
    assert a.decisions == b.decisions
    assert a.steps == b.steps


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_clean_under_two_seeds(name):
    for seed in (0, 1):
        run = run_scenario(SCENARIOS[name](), seed=seed)
        assert run.ok, "\n".join(
            f"[{f.kind}] {f.message}" for f in run.findings)
        assert run.steps > 50, "scenario degenerated to a trivial schedule"


def test_crash_snapshots_taken_and_verified():
    run = run_scenario(ReaderVsSplitter("shadow"), seed=0, crash_rate=0.05)
    assert run.snapshots > 0, "crash injection sampled no schedule points"
    assert run.ok


# ---------------------------------------------------------------------------
# mutation self-test: the explorer catches the deleted split lock
# ---------------------------------------------------------------------------

class _SplitLockFreeTree(ConcurrentTree):
    """ConcurrentTree.insert with the split-lock acquisition deleted."""

    def insert(self, value, tid):
        self.latches.acquire_write(0)
        try:
            self.tree.insert(value, tid)
        finally:
            self.latches.release(0)


def test_explorer_catches_deleted_split_lock():
    """Counterpart of the R006 static self-test: drive the mutant through
    the explorer with the runtime checker installed; the split that runs
    without the split lock must surface as a finding."""
    with race_checked():
        engine = StorageEngine.create(page_size=512, seed=7)
        inner = TREE_CLASSES["shadow"].create(engine, "ix", codec="uint32")
        # build the committed base through the *correct* protocol, then
        # hand the file to the mutant for the raced phase
        good = ConcurrentTree(inner)
        for i in range(0, 192, 2):
            good.insert(i, tid_for(i))
        engine.sync()
        tree = _SplitLockFreeTree(inner)

        def writer():
            for i in range(1, 192, 2):
                tree.insert(i, tid_for(i))

        def reader():
            for probe in range(0, 80, 2):
                tree.lookup(probe)

        result = ScheduleExplorer(seed=0).run(
            [("writer", writer), ("reader", reader)])
    assert not result.ok
    assert any("split lock" in f.message for f in result.findings), \
        [f.message for f in result.findings]


# ---------------------------------------------------------------------------
# satellite: writer vs. writer (delete racing a split) via the explorer
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kind", ["shadow", "reorg", "hybrid", "normal"])
def test_writer_vs_writer_delete_races_split(kind):
    """A deleter and a split-forcing inserter, driven through enumerated
    interleavings rather than raw threads: final content must be exactly
    (committed − deleted) ∪ inserted under every explored schedule."""
    for seed in (0, 3):
        run = run_scenario(WriterVsWriter(kind), seed=seed, crash_rate=0.0)
        assert run.ok, "\n".join(
            f"[{f.kind}] {f.message}" for f in run.findings)
        # the two writers really interleaved (the split lock serializes
        # the splits, not the whole operations)
        assert {"inserter", "deleter"} <= set(run.decisions)
