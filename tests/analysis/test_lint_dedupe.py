"""Cross-engine finding dedupe and exit-code consistency.

``--engine all`` runs the pattern, flow and threads engines over the
same files; rules in the same family firing at the same file:line are
one finding, and every engine speaks the same exit-code protocol
(0 clean / 1 findings-or-parse-errors / 2 usage)."""

import json

from repro.analysis.lint import Violation, dedupe_violations
from repro.tools.lint import main as lint_main


def v(rule_id, line=10, path="mod.py", witness=()):
    return Violation(rule_id=rule_id, path=path, line=line, col=0,
                     message=f"{rule_id} fired", witness=tuple(witness))


# ---------------------------------------------------------------------------
# dedupe_violations
# ---------------------------------------------------------------------------

def test_same_family_same_line_collapses_to_one():
    # R003 (pattern) and R012 (flow) are both the dirty family
    kept = dedupe_violations([v("R003"), v("R012")])
    assert len(kept) == 1


def test_witness_bearing_finding_wins():
    flow = v("R012", witness=((9, "pin"), (10, "raw write")))
    kept = dedupe_violations([v("R003"), flow])
    assert kept == [flow]
    # arrival order must not matter
    assert dedupe_violations([flow, v("R003")]) == [flow]


def test_different_lines_both_survive():
    kept = dedupe_violations([v("R003", line=10), v("R012", line=20)])
    assert [x.rule_id for x in kept] == ["R003", "R012"]


def test_different_files_both_survive():
    kept = dedupe_violations([v("R003", path="a.py"),
                              v("R012", path="b.py")])
    assert len(kept) == 2


def test_unrelated_families_untouched():
    # R016 (lockset family) and R012 (dirty family) at one line are
    # genuinely different findings
    kept = dedupe_violations([v("R012"), v("R016")])
    assert [x.rule_id for x in kept] == ["R012", "R016"]


def test_rules_without_a_family_never_merge():
    kept = dedupe_violations([v("R002"), v("R002", line=11)])
    assert len(kept) == 2


def test_first_arrival_order_is_preserved():
    # without a witness to break the tie, the first arrival is kept —
    # and keeps its position in the report
    kept = dedupe_violations(
        [v("R002", line=5), v("R003", line=9), v("R012", line=9)])
    assert [(x.rule_id, x.line) for x in kept] \
        == [("R002", 5), ("R003", 9)]


# ---------------------------------------------------------------------------
# exit codes agree across engines
# ---------------------------------------------------------------------------

def test_every_engine_is_clean_and_exits_zero_on_good_source(
        tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("def f():\n    return 1\n")
    for engine in ("pattern", "flow", "threads", "all"):
        assert lint_main([str(good), f"--engine={engine}"]) == 0
        capsys.readouterr()


def test_every_engine_reports_parse_errors_as_one(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    for engine in ("pattern", "flow", "threads", "all"):
        assert lint_main([str(broken), f"--engine={engine}"]) == 1
        capsys.readouterr()


def test_every_engine_rejects_bad_usage_as_two(capsys):
    for engine in ("pattern", "flow", "threads", "all"):
        assert lint_main([f"--engine={engine}", "--rules", "R999"]) == 2
        capsys.readouterr()


def test_engine_all_json_carries_the_deduped_set(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(buf):\n    buf.data[0] = 1\n")
    assert lint_main([str(bad), "--engine=all", "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    rules = [item["rule"] for item in payload["violations"]]
    # one dirty-family finding on the raw write (the flow form, which
    # carries the witness), plus the unrelated missing-verify R002
    assert rules.count("R012") == 1
    assert "R003" not in rules
