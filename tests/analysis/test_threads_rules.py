"""Unit tests for the thread-topology rules R016–R020: a violating and
a conforming sample per rule, role-bearing witness chains, and the
analyzer refinements (handoff publication, drop-and-reacquire wait
wrappers, caller-side predicate loops)."""

import textwrap

from repro.analysis.lint import lint_paths
from repro.analysis.threads.rules import (
    BlockingUnderLockRule,
    CheckThenActRule,
    ConditionWaitLoopRule,
    InconsistentLocksetRule,
    UnjoinedThreadRule,
)


def run(tmp_path, source, rules, filename="mod.py"):
    path = tmp_path / filename
    path.write_text(textwrap.dedent(source))
    return lint_paths([path], rules)


def rule_ids(report):
    return [v.rule_id for v in report.violations]


def notes(violation):
    return [note for _, note in violation.witness]


# ---------------------------------------------------------------------------
# R016 — inconsistent locksets on a shared attribute
# ---------------------------------------------------------------------------

COUNTER = """
    import threading

    class Counter:
        def __init__(self):
            self.value = 0
            self._lock = threading.Lock()
            self._thread = threading.Thread(target=self._loop,
                                            name="bump-0")
            self._thread.start()

        def _loop(self):
            {write}

        def read(self):
            with self._lock:
                return self.value

        def stop(self):
            self._thread.join()
"""


def test_r016_flags_unlocked_write_with_role_witness(tmp_path):
    report = run(tmp_path, COUNTER.format(write="self.value += 1"),
                 [InconsistentLocksetRule()])
    assert rule_ids(report) == ["R016"]
    v = report.violations[0]
    assert "Counter.value" in v.message
    assert "'bump'" in v.message and "'caller'" in v.message
    # the witness names the spawn that establishes the writer's role
    assert any("spawns" in n and "'bump'" in n for n in notes(v))
    assert any("writes Counter.value" in n for n in notes(v))


def test_r016_clean_when_consistently_locked(tmp_path):
    source = COUNTER.format(
        write="with self._lock:\n                self.value += 1")
    report = run(tmp_path, source, [InconsistentLocksetRule()])
    assert report.ok, report.render_text()


def test_r016_init_only_writes_are_publication(tmp_path):
    report = run(tmp_path, """
        import threading

        class Config:
            def __init__(self):
                self.limit = 8
                self._thread = threading.Thread(target=self._loop,
                                                name="scan-0")

            def _loop(self):
                return self.limit

            def read(self):
                return self.limit

            def stop(self):
                self._thread.join()
    """, [InconsistentLocksetRule()])
    assert report.ok, report.render_text()


def test_r016_single_role_attribute_is_clean(tmp_path):
    report = run(tmp_path, """
        class Local:
            def __init__(self):
                self.value = 0

            def bump(self):
                self.value += 1

            def read(self):
                return self.value
    """, [InconsistentLocksetRule()])
    assert report.ok, report.render_text()


def test_r016_event_handoff_publication_is_clean(tmp_path):
    # single writer role publishes through done.set(); the caller only
    # reads after done.wait() — the happens-before edge replaces a lock
    report = run(tmp_path, """
        import threading

        class Job:
            def __init__(self):
                self.result = None
                self.done = threading.Event()
                self._thread = threading.Thread(target=self._loop,
                                                name="job-0")
                self._thread.start()

            def _loop(self):
                self.result = 42
                self.done.set()

            def wait_result(self):
                self.done.wait()
                return self.result

            def stop(self):
                self._thread.join()
    """, [InconsistentLocksetRule()])
    assert report.ok, report.render_text()


def test_r016_inherited_lockset_from_callers(tmp_path):
    # _emit reads with no lexical lock, but every call site holds the
    # lock — the interprocedural fixpoint must see the inherited lock
    report = run(tmp_path, """
        import threading

        class Gauge:
            def __init__(self):
                self.value = 0
                self._lock = threading.Lock()
                self._thread = threading.Thread(target=self._loop,
                                                name="tick-0")
                self._thread.start()

            def _loop(self):
                with self._lock:
                    self.value += 1
                    self._emit()

            def _emit(self):
                print(self.value)

            def read(self):
                with self._lock:
                    return self.value

            def stop(self):
                self._thread.join()
    """, [InconsistentLocksetRule()])
    assert report.ok, report.render_text()


# ---------------------------------------------------------------------------
# R017 — blocking call under a lock
# ---------------------------------------------------------------------------

def test_r017_flags_queue_get_under_lock(tmp_path):
    report = run(tmp_path, """
        import queue
        import threading

        class Pump:
            def __init__(self):
                self._lock = threading.Lock()
                self._q = queue.Queue()

            def drain(self):
                with self._lock:
                    return self._q.get()
    """, [BlockingUnderLockRule()])
    assert rule_ids(report) == ["R017"]
    v = report.violations[0]
    assert "Queue.get()" in v.message
    assert "Pump._lock" in v.message


def test_r017_nonblocking_get_is_clean(tmp_path):
    report = run(tmp_path, """
        import queue
        import threading

        class Pump:
            def __init__(self):
                self._lock = threading.Lock()
                self._q = queue.Queue()

            def drain(self):
                with self._lock:
                    return self._q.get(block=False)
    """, [BlockingUnderLockRule()])
    assert report.ok, report.render_text()


def test_r017_transitive_through_package_calls(tmp_path):
    report = run(tmp_path, """
        import threading
        from time import sleep

        class Slow:
            def __init__(self):
                self._lock = threading.Lock()

            def outer(self):
                with self._lock:
                    self._inner()

            def _inner(self):
                sleep(0.1)
    """, [BlockingUnderLockRule()])
    assert rule_ids(report) == ["R017"]
    assert any("Slow._inner" in n for n in notes(report.violations[0]))


def test_r017_condition_wait_releases_its_own_lock(tmp_path):
    report = run(tmp_path, """
        import threading

        class Waiter:
            def __init__(self):
                self._cond = threading.Condition()
                self.ready = False

            def take(self):
                with self._cond:
                    while not self.ready:
                        self._cond.wait()
    """, [BlockingUnderLockRule()])
    assert report.ok, report.render_text()


def test_r017_drop_and_reacquire_wrapper_is_clean(tmp_path):
    # the LatchManager shape: a Condition built around an explicit
    # mutex, and a wait wrapper that releases/reacquires that mutex —
    # the alias and the releases-own exemption must both hold,
    # transitively through the wrapper call
    report = run(tmp_path, """
        import threading

        class Latch:
            def __init__(self):
                self._mutex = threading.Lock()
                self._cond = threading.Condition(self._mutex)
                self.busy = False

            def _pause(self):
                self._mutex.release()
                self._mutex.acquire()

            def acquire(self):
                with self._cond:
                    while self.busy:
                        self._pause()
                    self.busy = True
    """, [BlockingUnderLockRule()])
    assert report.ok, report.render_text()


# ---------------------------------------------------------------------------
# R018 — unjoined / unconsumed thread handles
# ---------------------------------------------------------------------------

def test_r018_flags_fire_and_forget_thread(tmp_path):
    report = run(tmp_path, """
        import threading

        def fire(fn):
            t = threading.Thread(target=fn, name="fire-0")
            t.start()
    """, [UnjoinedThreadRule()])
    assert rule_ids(report) == ["R018"]
    assert "never joined" in report.violations[0].message


def test_r018_joined_thread_is_clean(tmp_path):
    report = run(tmp_path, """
        import threading

        def fire(fn):
            t = threading.Thread(target=fn, name="fire-0")
            t.start()
            t.join()
    """, [UnjoinedThreadRule()])
    assert report.ok, report.render_text()


def test_r018_attribute_root_joined_elsewhere_is_clean(tmp_path):
    report = run(tmp_path, """
        import threading

        class Pool:
            def __init__(self):
                self._threads: list[threading.Thread] = []
                for i in range(2):
                    t = threading.Thread(target=self._loop,
                                         name="pool-0")
                    t.start()
                    self._threads.append(t)

            def _loop(self):
                return None

            def close(self):
                for t in self._threads:
                    t.join()
    """, [UnjoinedThreadRule()])
    assert report.ok, report.render_text()


# ---------------------------------------------------------------------------
# R019 — non-atomic check-then-act
# ---------------------------------------------------------------------------

REGISTRY = """
    import threading

    class Registry:
        def __init__(self):
            self._lock = threading.Lock()
            self.items = {{}}
            self._thread = threading.Thread(target=self._loop,
                                            name="feed-0")
            self._thread.start()

        def _loop(self):
            with self._lock:
                self.items["x"] = 1

        def add(self, key):
            {body}

        def stop(self):
            self._thread.join()
"""


def test_r019_flags_unlocked_check_then_act(tmp_path):
    body = ('if key not in self.items:\n'
            '                self.items[key] = 1')
    report = run(tmp_path, REGISTRY.format(body=body),
                 [CheckThenActRule()])
    assert rule_ids(report) == ["R019"]
    v = report.violations[0]
    assert "Registry.items" in v.message
    assert any("branch test reads" in n for n in notes(v))
    assert any("governed write" in n for n in notes(v))


def test_r019_clean_when_atomic_under_lock(tmp_path):
    body = ('with self._lock:\n'
            '                if key not in self.items:\n'
            '                    self.items[key] = 1')
    report = run(tmp_path, REGISTRY.format(body=body),
                 [CheckThenActRule()])
    assert report.ok, report.render_text()


# ---------------------------------------------------------------------------
# R020 — Condition.wait outside a predicate loop
# ---------------------------------------------------------------------------

def test_r020_flags_bare_wait(tmp_path):
    report = run(tmp_path, """
        import threading

        class Waiter:
            def __init__(self):
                self._cond = threading.Condition()
                self.ready = False

            def take(self):
                with self._cond:
                    if not self.ready:
                        self._cond.wait()
    """, [ConditionWaitLoopRule()])
    assert rule_ids(report) == ["R020"]
    assert "predicate loop" in report.violations[0].message


def test_r020_while_wrapped_wait_is_clean(tmp_path):
    report = run(tmp_path, """
        import threading

        class Waiter:
            def __init__(self):
                self._cond = threading.Condition()
                self.ready = False

            def take(self):
                with self._cond:
                    while not self.ready:
                        self._cond.wait()
    """, [ConditionWaitLoopRule()])
    assert report.ok, report.render_text()


def test_r020_event_wait_is_not_flagged(tmp_path):
    report = run(tmp_path, """
        import threading

        def block(done: threading.Event):
            done.wait()
    """, [ConditionWaitLoopRule()])
    assert report.ok, report.render_text()


def test_r020_wait_wrapper_with_caller_loops_is_clean(tmp_path):
    # the predicate while lives at every call site of the private
    # wrapper, exactly like LatchManager.acquire_read / _wait
    report = run(tmp_path, """
        import threading

        class Latch:
            def __init__(self):
                self._cond = threading.Condition()
                self.busy = False

            def _wait(self):
                self._cond.wait()

            def acquire(self):
                with self._cond:
                    while self.busy:
                        self._wait()
                    self.busy = True
    """, [ConditionWaitLoopRule()])
    assert report.ok, report.render_text()
