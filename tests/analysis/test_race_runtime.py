"""Runtime lock-order / lockset checker: cycle detection on the
acquisition-order graph, lockset checks at the mutation points, and the
clean-protocol baseline (no findings on the real code)."""

# the mutant trees deliberately violate the latch protocol (that is
# the point); bare acquire/release shapes feed the order graph (R014
# is the path-sensitive form of the same latch discipline)
# lint: disable=R006,R009,R014

import threading

import pytest

from repro import StorageEngine, TREE_CLASSES
from repro.core.concurrency import ConcurrentTree, LatchManager, SplitLock
from repro.analysis.races import runtime
from repro.analysis.races.runtime import (
    Finding,
    LockOrderGraph,
    RaceCheckError,
)

from ..conftest import tid_for


@pytest.fixture
def checked():
    """Install the checker with a clean findings slate; uninstall after
    (nesting-safe, so it composes with the REPRO_SANITIZE fixture)."""
    with runtime.race_checked():
        before = len(runtime.findings())
        yield lambda: runtime.findings()[before:]


# ---------------------------------------------------------------------------
# the graph itself
# ---------------------------------------------------------------------------

def test_graph_no_cycle_on_consistent_order():
    graph = LockOrderGraph()
    a, b, c = ("latch", 1, 0), ("latch", 2, 0), ("split", 3)
    assert graph.observe(a, b) is None
    assert graph.observe(b, c) is None
    assert graph.observe(a, c) is None


def test_graph_detects_two_lock_inversion():
    graph = LockOrderGraph()
    a, b = ("latch", 1, 0), ("latch", 2, 0)
    assert graph.observe(a, b) is None
    cycle = graph.observe(b, a)
    assert cycle is not None and cycle[0] == b and cycle[-1] == b


def test_graph_detects_three_lock_rotation():
    graph = LockOrderGraph()
    a, b, c = ("s", 1), ("s", 2), ("s", 3)
    assert graph.observe(a, b) is None
    assert graph.observe(b, c) is None
    cycle = graph.observe(c, a)
    assert cycle is not None and set(cycle) == {a, b, c}


def test_graph_ignores_reacquisition_of_same_key():
    graph = LockOrderGraph()
    a = ("latch", 1, 0)
    assert graph.observe(a, a) is None
    assert graph.edges() == {}


# ---------------------------------------------------------------------------
# cycle detection through the observer seam
# ---------------------------------------------------------------------------

def _run_thread(fn):
    t = threading.Thread(target=fn)
    t.start()
    t.join(timeout=5)
    assert not t.is_alive()


def test_opposite_latch_orders_reported(checked):
    """Two latch managers acquired in opposite orders by two threads —
    neither run blocks, but the deadlock-capable order inversion must be
    reported as a (non-fatal) lock-order-cycle finding."""
    first, second = LatchManager(), LatchManager()

    def forward():
        first.acquire_write(1, max_held=2)
        second.acquire_write(1, max_held=2)
        second.release(1)
        first.release(1)

    def backward():
        second.acquire_write(1, max_held=2)
        first.acquire_write(1, max_held=2)
        first.release(1)
        second.release(1)

    _run_thread(forward)
    _run_thread(backward)
    kinds = [f.kind for f in checked()]
    assert "lock-order-cycle" in kinds


def test_split_before_latch_order_is_cycle_free(checked):
    """The paper's order — split lock, then write latch — from any number
    of threads never closes a cycle."""
    lock, latches = SplitLock(), LatchManager()

    def correct():
        lock.acquire(latches)
        latches.acquire_write(0)
        latches.release(0)
        lock.release()

    for _ in range(3):
        _run_thread(correct)
    assert checked() == []


# ---------------------------------------------------------------------------
# lockset checks at the mutation points
# ---------------------------------------------------------------------------

class _SplitLockFreeTree(ConcurrentTree):
    """Mutant: writes under the write latch but never takes the split
    lock — the runtime analogue of the R006 mutation self-test."""

    def insert(self, value, tid):
        self.latches.acquire_write(0)
        try:
            self.tree.insert(value, tid)
        finally:
            self.latches.release(0)


class _LatchFreeTree(ConcurrentTree):
    """Mutant: writes with no latch at all."""

    def insert(self, value, tid):
        self.tree.insert(value, tid)


class _MutatingReaderTree(ConcurrentTree):
    """Mutant: mutates the tree from under the shared read latch."""

    def lookup(self, value):
        self.latches.acquire_read(0)
        try:
            self.tree.insert(value, tid_for(value))
            return self.tree.lookup(value)
        finally:
            self.latches.release(0)


def _fresh_tree(cls, kind="shadow"):
    engine = StorageEngine.create(page_size=512, seed=3)
    inner = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    return engine, cls(inner)


def test_split_without_split_lock_caught(checked):
    engine, tree = _fresh_tree(_SplitLockFreeTree)
    with pytest.raises(RaceCheckError, match="split lock"):
        # enough inserts to force a split; non-splitting inserts pass
        for i in range(200):
            tree.insert(i, tid_for(i))
    assert any(f.kind == "split-without-split-lock" for f in checked())


def test_mutation_without_write_latch_caught(checked):
    engine, tree = _fresh_tree(_LatchFreeTree)
    with pytest.raises(RaceCheckError, match="no write latch"):
        tree.insert(1, tid_for(1))
    assert any(f.kind == "mutation-without-write-latch"
               for f in checked())


def test_mutation_under_read_latch_caught(checked):
    engine, tree = _fresh_tree(_MutatingReaderTree)
    with pytest.raises(RaceCheckError, match="read"):
        tree.lookup(7)
    assert any(f.kind == "mutation-under-read-latch" for f in checked())


def test_correct_protocol_produces_no_findings(checked):
    """The real ConcurrentTree, including splits and deletes, is clean
    under the checker."""
    engine, tree = _fresh_tree(ConcurrentTree)
    for i in range(200):
        tree.insert(i, tid_for(i))
    for i in range(0, 200, 5):
        tree.delete(i)
    assert tree.lookup(1) is not None
    engine.sync()
    assert checked() == []


def test_findings_emitted_as_trace_events(checked):
    from repro.obs import scoped_trace

    engine, tree = _fresh_tree(_LatchFreeTree)
    with scoped_trace() as log:
        with pytest.raises(RaceCheckError):
            tree.insert(1, tid_for(1))
        events = log.events("race_finding")
    assert events and events[0].detail["kind"] == "mutation-without-write-latch"


def test_install_uninstall_restore_patches():
    from repro.core.btree_base import BLinkTree
    from repro.storage.pagefile import PageFile

    already = runtime._installed   # e.g. the REPRO_SANITIZE fixture
    before_init = ConcurrentTree.__init__
    before_dirty = PageFile.mark_dirty
    before_split = BLinkTree.__dict__["_split_and_insert"]
    with runtime.race_checked():
        if not already:
            assert ConcurrentTree.__init__ is not before_init
            assert PageFile.mark_dirty is not before_dirty
    # nesting-safe: the pre-existing install (or the pristine state)
    # survives the block unchanged
    assert ConcurrentTree.__init__ is before_init
    assert PageFile.mark_dirty is before_dirty
    assert BLinkTree.__dict__["_split_and_insert"] is before_split


def test_finding_to_dict_round_trip():
    f = Finding("k", "msg", thread="t", detail={"page": 3})
    assert f.to_dict() == {"kind": "k", "message": "msg", "thread": "t",
                           "detail": {"page": 3}}
