"""Unit tests for the path-sensitive flow rules R011–R015: a violating
and a conforming sample per rule, witness-path contents, pragma
suppression, the shared-analysis cache, and the CLI surface
(``--engine`` / ``--rules`` / ``--list-rules`` / ``--sarif``)."""

import json
import textwrap

from repro.analysis.flow import analysis_for, flow_rules
from repro.analysis.flow.rules import (
    LatchAcrossBlockingPathRule,
    NoteBeforeDirtyOnPathRule,
    PinLeakOnPathRule,
    UseAfterUnpinRule,
    WriteWithoutDirtyOnPathRule,
)
from repro.analysis.lint import FileContext, lint_paths
from repro.tools.lint import main as lint_main


def run(tmp_path, source, rules, filename="mod.py"):
    path = tmp_path / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_paths([path], rules)


def rule_ids(report):
    return [v.rule_id for v in report.violations]


def notes(violation):
    return [note for _, note in violation.witness]


# ---------------------------------------------------------------------------
# R011 — pin leak on some path
# ---------------------------------------------------------------------------

def test_r011_flags_leak_on_one_branch_with_witness(tmp_path):
    report = run(tmp_path, """
        def bad(file, page, cond):
            buf = file.pin(page)
            if cond:
                return None
            file.unpin(buf)
    """, [PinLeakOnPathRule()])
    assert rule_ids(report) == ["R011"]
    v = report.violations[0]
    assert v.line == 3  # anchored at the pin site
    # the witness shows the concrete path: pin, then the branch
    # decision that leads to the leaking return
    assert "pin 'buf'" in notes(v)
    assert any("'cond' is True" in n for n in notes(v))
    assert "unpin 'buf'" not in notes(v)


def test_r011_flags_swallowing_handler_leg(tmp_path):
    report = run(tmp_path, """
        def bad(file, page, op):
            buf = file.pin(page)
            try:
                op()
            except ValueError:
                return None
            file.unpin(buf)
    """, [PinLeakOnPathRule()])
    # two leaking legs: the swallowed-ValueError return and the
    # uncaught-exception edge — both anchored at the pin
    assert set(rule_ids(report)) == {"R011"}
    assert all(v.line == 3 for v in report.violations)


def test_r011_accepts_finally_and_both_branch_release(tmp_path):
    report = run(tmp_path, """
        def good(file, page, op):
            buf = file.pin(page)
            try:
                return op(buf)
            finally:
                file.unpin(buf)

        def also_good(file, page, cond):
            buf = file.pin(page)
            if cond:
                file.unpin(buf)
                return None
            file.unpin(buf)
    """, [PinLeakOnPathRule()])
    assert report.ok


def test_r011_accepts_guarded_sentinel_release(tmp_path):
    # the buf-is-None sentinel idiom: nullability refinement must prune
    # the impossible arm of the guarded finally
    report = run(tmp_path, """
        def good(file, pages, op):
            buf = None
            try:
                for page in pages:
                    if buf is not None:
                        file.unpin(buf)
                        buf = None
                    buf = file.pin(page)
                    op(buf)
            finally:
                if buf is not None:
                    file.unpin(buf)
    """, [PinLeakOnPathRule()])
    assert report.ok


def test_r011_accepts_ownership_transfer(tmp_path):
    report = run(tmp_path, """
        def good(file, page):
            buf = file.pin(page)
            return buf

        def also_good(file, page, path):
            buf = file.pin(page)
            path.append(buf)
    """, [PinLeakOnPathRule()])
    assert report.ok


# ---------------------------------------------------------------------------
# R012 — mutation without dirty evidence on the path
# ---------------------------------------------------------------------------

def test_r012_flags_unmarked_branch_with_witness(tmp_path):
    report = run(tmp_path, """
        def bad(self, buf, view, cond):
            if cond:
                view.insert_item(0, b"k")
            else:
                view.insert_item(1, b"k")
                self.file.mark_dirty(buf)
    """, [WriteWithoutDirtyOnPathRule()])
    assert rule_ids(report) == ["R012"]
    v = report.violations[0]
    assert v.line == 4  # the mutation on the unmarked arm
    assert any("mutation" in n for n in notes(v))
    assert not any("dirty evidence" in n for n in notes(v))


def test_r012_accepts_dirty_after_the_join(tmp_path):
    report = run(tmp_path, """
        def good(self, buf, view, cond):
            if cond:
                view.insert_item(0, b"k")
            else:
                view.insert_item(1, b"k")
            self.file.mark_dirty(buf)
    """, [WriteWithoutDirtyOnPathRule()])
    assert report.ok


def test_r012_exempts_the_page_layer(tmp_path):
    report = run(tmp_path, """
        def fine_here(self, view):
            view.insert_item(0, b"k")
    """, [WriteWithoutDirtyOnPathRule()], filename="core/nodeview.py")
    assert report.ok


# ---------------------------------------------------------------------------
# R013 — use after unpin on the current path
# ---------------------------------------------------------------------------

def test_r013_flags_read_after_release_with_witness(tmp_path):
    report = run(tmp_path, """
        def bad(self, file, page):
            buf = file.pin(page)
            count = buf.data[0]
            file.unpin(buf)
            return buf.data[count]
    """, [UseAfterUnpinRule()])
    assert rule_ids(report) == ["R013"]
    v = report.violations[0]
    assert v.line == 6
    assert "unpinned at line 5" in v.message
    assert "unpin 'buf'" in notes(v)


def test_r013_tracks_derived_views(tmp_path):
    report = run(tmp_path, """
        def bad(self, file, page):
            buf = file.pin(page)
            view = NodeView(buf.data, 512)
            file.unpin(buf)
            return view.n_keys + self.count(view)
    """, [UseAfterUnpinRule()])
    assert rule_ids(report) == ["R013"]


def test_r013_accepts_use_then_release(tmp_path):
    report = run(tmp_path, """
        def good(self, file, page):
            buf = file.pin(page)
            try:
                return buf.data[0]
            finally:
                file.unpin(buf)
    """, [UseAfterUnpinRule()])
    assert report.ok


def test_r013_repin_starts_a_fresh_fact(tmp_path):
    report = run(tmp_path, """
        def good(self, file, page, other):
            buf = file.pin(page)
            file.unpin(buf)
            buf = file.pin(other)
            try:
                return buf.data[0]
            finally:
                file.unpin(buf)
    """, [UseAfterUnpinRule()])
    assert report.ok


# ---------------------------------------------------------------------------
# R014 — latch across blocking call / latch leak
# ---------------------------------------------------------------------------

def test_r014_flags_blocking_call_under_read_latch(tmp_path):
    report = run(tmp_path, """
        def bad(self):
            self.latch.acquire_read()
            self.file.sync()
            self.latch.release()
    """, [LatchAcrossBlockingPathRule()])
    assert rule_ids(report) == ["R014"]
    v = report.violations[0]
    assert any("blocking" in n for n in notes(v))


def test_r014_flags_latch_leaked_on_early_return(tmp_path):
    report = run(tmp_path, """
        def bad(self, cond):
            self.latch.acquire_read()
            if cond:
                return None
            self.latch.release()
    """, [LatchAcrossBlockingPathRule()])
    assert rule_ids(report) == ["R014"]


def test_r014_accepts_release_before_block(tmp_path):
    report = run(tmp_path, """
        def good(self):
            self.latch.acquire_read()
            n = self.view.n_keys
            self.latch.release()
            self.file.sync()
            return n
    """, [LatchAcrossBlockingPathRule()])
    assert report.ok


# ---------------------------------------------------------------------------
# R015 — cache note before the path's dirty-mark
# ---------------------------------------------------------------------------

def test_r015_flags_note_before_dirty_with_witness(tmp_path):
    report = run(tmp_path, """
        def bad(self, buf, view, key, tid):
            view.insert_item(0, key)
            self.cache.note_insert(key, tid)
            self.file.mark_dirty(buf)
    """, [NoteBeforeDirtyOnPathRule()])
    assert rule_ids(report) == ["R015"]
    v = report.violations[0]
    assert v.line == 4
    assert any("note_insert" in n for n in notes(v))


def test_r015_accepts_dirty_then_note(tmp_path):
    report = run(tmp_path, """
        def good(self, buf, view, key, tid):
            view.insert_item(0, key)
            self.file.mark_dirty(buf)
            self.cache.note_insert(key, tid)
    """, [NoteBeforeDirtyOnPathRule()])
    assert report.ok


# ---------------------------------------------------------------------------
# pragmas, registry, shared analysis
# ---------------------------------------------------------------------------

def test_line_pragma_suppresses_flow_finding(tmp_path):
    report = run(tmp_path, """
        def f(file, page, cond):
            buf = file.pin(page)  # lint: disable=R011
            if cond:
                return None
            file.unpin(buf)
    """, [PinLeakOnPathRule()])
    assert report.ok


def test_file_pragma_suppresses_flow_findings(tmp_path):
    report = run(tmp_path, """
        # exercises leak paths on purpose
        # lint: disable=R011

        def f(file, page, cond):
            buf = file.pin(page)
            if cond:
                return None
            file.unpin(buf)
    """, [PinLeakOnPathRule()])
    assert report.ok


def test_flow_registry_order_and_ids():
    rules = flow_rules()
    assert [r.rule_id for r in rules] == \
        ["R011", "R012", "R013", "R014", "R015"]
    assert all(r.summary for r in rules)


def test_rules_share_one_analysis_per_file(tmp_path):
    path = tmp_path / "mod.py"
    source = "def f():\n    return 1\n"
    path.write_text(source)
    ctx = FileContext(path, "mod.py", source)
    assert analysis_for(ctx) is analysis_for(ctx)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

LEAKY = """\
def f(file, page, cond):
    buf = file.pin(page)
    if cond:
        return None
    file.unpin(buf)
"""


def test_cli_engine_selection(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(LEAKY)
    # the flow engine sees the per-path leak; R001's single-statement
    # heuristic (pattern engine) has its own opinion, so pin the check
    # to the rules each engine owns
    assert lint_main([str(bad), "--engine=flow", "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert {v["rule"] for v in payload["violations"]} == {"R011"}

    assert lint_main([str(bad), "--engine=pattern", "--rules", "R002",
                      "--format=json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["violations"] == []


def test_cli_rules_filter_accepts_flow_ids(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(LEAKY)
    assert lint_main([str(bad), "--rules", "R013"]) == 0
    capsys.readouterr()
    assert lint_main([str(bad), "--rules", "R011"]) == 1
    capsys.readouterr()
    # a flow id is unknown to the pattern engine alone
    assert lint_main([str(bad), "--engine=pattern",
                      "--rules", "R011"]) == 2


def test_cli_list_rules_covers_both_engines(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("R001", "R005", "R010", "R011", "R013", "R015"):
        assert rule_id in out


def test_cli_json_includes_witness(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(LEAKY)
    assert lint_main([str(bad), "--engine=flow", "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    (violation,) = payload["violations"]
    steps = violation["witness"]
    assert steps and all({"line", "note"} <= set(s) for s in steps)
    assert any(s["note"] == "pin 'buf'" for s in steps)


def test_cli_sarif_output(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(LEAKY)
    assert lint_main([str(bad), "--sarif"]) == 1
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    run_ = sarif["runs"][0]
    driver = run_["tool"]["driver"]
    assert {r["id"] for r in driver["rules"]} >= {"R001", "R011"}
    results = run_["results"]
    r011 = [r for r in results if r["ruleId"] == "R011"]
    assert r011, results
    loc = r011[0]["locations"][0]["physicalLocation"]
    assert loc["region"]["startLine"] == 2
    # the witness path rides along as relatedLocations
    related = r011[0]["relatedLocations"]
    assert any("pin 'buf'" == rl["message"]["text"] for rl in related)


def test_cli_sarif_clean_run_has_no_results(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("def f():\n    return 1\n")
    assert lint_main([str(good), "--sarif"]) == 0
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["runs"][0]["results"] == []
