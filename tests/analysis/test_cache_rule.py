"""R010 — the three legs of decoded-key cache invalidation."""

import textwrap

from repro.analysis.lint import lint_paths
from repro.analysis.rules.cache import StaleCacheInvalidationRule


def run(tmp_path, source, filename):
    path = tmp_path / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_paths([path], [StaleCacheInvalidationRule()])


def rule_ids(report):
    return [v.rule_id for v in report.violations]


# ---------------------------------------------------------------------------
# leg 1 — NodeView key-set mutators must drop cached_keys
# ---------------------------------------------------------------------------

def test_r010_flags_mutator_keeping_cached_keys(tmp_path):
    report = run(tmp_path, """
        class NodeView:
            def insert_item(self, index, blob):
                self.n_keys += 1
                self.write(index, blob)
    """, "core/nodeview.py")
    assert rule_ids(report) == ["R010"]
    assert "cached_keys" in report.violations[0].message


def test_r010_accepts_mutator_dropping_cached_keys(tmp_path):
    report = run(tmp_path, """
        class NodeView:
            def delete_item(self, index):
                self.n_keys -= 1
                self.cached_keys = None
    """, "core/nodeview.py")
    assert report.ok


def test_r010_ignores_non_mutator_methods(tmp_path):
    report = run(tmp_path, """
        class NodeView:
            def reclaim_backup(self):
                # header-only change: the live key set is untouched
                self.prev_n_keys = 0
    """, "core/nodeview.py")
    assert report.ok


def test_r010_leg1_only_applies_to_nodeview_module(tmp_path):
    report = run(tmp_path, """
        class Mimic:
            def insert_item(self, index, blob):
                self.n_keys += 1
    """, "core/other.py")
    assert report.ok


# ---------------------------------------------------------------------------
# leg 2 — buffer-pool content events need version evidence
# ---------------------------------------------------------------------------

def test_r010_flags_dirty_mark_without_version_bump(tmp_path):
    report = run(tmp_path, """
        def mark_dirty(self, buf):
            buf.dirty = True
    """, "storage/buffer_pool.py")
    assert rule_ids(report) == ["R010"]
    assert "version" in report.violations[0].message


def test_r010_accepts_dirty_mark_with_version_store(tmp_path):
    report = run(tmp_path, """
        def mark_dirty(self, buf):
            buf.dirty = True
            buf.version = _next_version()
    """, "storage/buffer_pool.py")
    assert report.ok


def test_r010_flags_page_no_rebind_without_evidence(tmp_path):
    report = run(tmp_path, """
        def remap(self, buf, new_page):
            buf.page_no = new_page
    """, "storage/buffer_pool.py")
    assert rule_ids(report) == ["R010"]


def test_r010_accepts_rebind_via_fresh_buffer(tmp_path):
    report = run(tmp_path, """
        def fault(self, page_no, data):
            buf = Buffer(page_no, data)
            return buf
    """, "storage/buffer_pool.py")
    assert report.ok


def test_r010_accepts_clean_down_and_unbind(tmp_path):
    # sync-time clean-down (= False) and eviction unbind (= None) do not
    # change content and need no version evidence
    report = run(tmp_path, """
        def clean(self, buf):
            buf.dirty = False
            buf.page_no = None
    """, "storage/buffer_pool.py")
    assert report.ok


# ---------------------------------------------------------------------------
# leg 3 — note_* maintenance must follow the dirty-marking version bump
# ---------------------------------------------------------------------------

def test_r010_flags_note_before_dirty(tmp_path):
    report = run(tmp_path, """
        def insert(self, leaf, slot, key, keys):
            self.fp.note_insert(leaf.buffer, slot, key, keys)
            self._dirty(leaf.buffer)
    """, "core/tree.py")
    assert rule_ids(report) == ["R010"]
    assert "before" in report.violations[0].message


def test_r010_flags_note_without_any_dirty(tmp_path):
    report = run(tmp_path, """
        def insert(self, leaf, slot, key, keys):
            self.fp.note_insert(leaf.buffer, slot, key, keys)
    """, "core/tree.py")
    assert rule_ids(report) == ["R010"]
    assert "never marks" in report.violations[0].message


def test_r010_accepts_note_after_dirty(tmp_path):
    report = run(tmp_path, """
        def delete(self, leaf, slot, keys):
            leaf.view.delete_item(slot)
            self._dirty(leaf.buffer)
            self.fp.note_delete(leaf.buffer, slot, keys)
    """, "core/tree.py")
    assert report.ok


def test_r010_leg3_applies_under_storage_too(tmp_path):
    report = run(tmp_path, """
        def touch(self, buf, keys):
            self.fp.note_insert(buf, 0, b"k", keys)
    """, "storage/helper.py")
    assert rule_ids(report) == ["R010"]


def test_r010_leg3_ignores_other_packages(tmp_path):
    report = run(tmp_path, """
        def touch(self, buf, keys):
            self.fp.note_insert(buf, 0, b"k", keys)
    """, "bench/driver.py")
    assert report.ok


def test_r010_pragma_suppression(tmp_path):
    report = run(tmp_path, """
        def insert(self, leaf, slot, key, keys):
            self.fp.note_insert(leaf.buffer, slot, key, keys)  # lint: disable=R010
    """, "core/tree.py")
    assert report.ok


def test_r010_registered_in_full_rule_set():
    from repro.analysis.rules import all_rules
    assert any(r.rule_id == "R010" for r in all_rules())
