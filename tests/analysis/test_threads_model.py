"""The thread-topology model against the real ``repro.shard`` package:
role inference, call-edge resolution, lock-key normalization,
happens-before pairing and the interprocedural lockset fixpoint must
all hold on the code the analyzer exists to check."""

from pathlib import Path

from repro.analysis.threads.engine import ThreadAnalysis
from repro.analysis.threads.model import package_model
from repro.analysis.threads.roles import entry_methods, infer_roles

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def shard_model():
    return package_model(SRC / "shard" / "workers.py")


# ---------------------------------------------------------------------------
# roles
# ---------------------------------------------------------------------------

def test_worker_loop_runs_as_shard_worker():
    roles = infer_roles(shard_model())
    assert roles.of("ShardWorkerPool._worker_loop") == {"shard-worker"}
    # the partition runner is only reachable from the worker loop
    assert roles.of("ShardWorkerPool._run_partition") == {"shard-worker"}


def test_heal_step_reachable_from_both_roles():
    # HealQueue.step is public (caller) and driven between foreground
    # ops by the owner threads (shard-worker) — both roles must stick
    roles = infer_roles(shard_model())
    assert {"caller", "shard-worker"} <= roles.of("HealQueue.step")
    assert {"caller", "shard-worker"} <= roles.of("HealQueue._emit")


def test_recovery_workers_run_as_shard_rec():
    model = package_model(SRC / "shard" / "recovery.py")
    roles = infer_roles(model)
    assert "shard-rec" in roles.of("RecoveryOrchestrator._recover_one")
    assert "shard-rec" in roles.of("RecoveryOrchestrator._admit_one")


def test_role_witness_chain_starts_at_the_spawn():
    roles = infer_roles(shard_model())
    chain = roles.chain("ShardWorkerPool._run_partition", "shard-worker")
    assert chain, "no witness chain recorded"
    assert "spawns" in chain[0][2]
    assert "Thread(target=…)" in chain[0][2]


def test_entry_methods_cover_spawns_and_public_api():
    entries = entry_methods(shard_model())
    assert "ShardWorkerPool._worker_loop" in entries   # spawn target
    assert "ShardWorkerPool.run_batch" in entries      # public API
    assert "ShardWorkerPool._run_partition" not in entries


# ---------------------------------------------------------------------------
# lock keys and locksets
# ---------------------------------------------------------------------------

def test_per_shard_lock_subscripts_normalize():
    model = shard_model()
    complete = model.methods["HealQueue._complete"]
    done_writes = [a for a in complete.accesses
                   if a.attr == "done" and a.kind == "write"]
    assert done_writes, "no write to _ShardHeal.done in _complete"
    assert done_writes[0].lockset == {"HealQueue._locks[·]"}


def test_condition_lock_alias_folds_to_one_key():
    model = package_model(SRC / "core" / "concurrency.py")
    info = model.classes["LatchManager"]
    assert info.lock_aliases.get("_mutex") == "_cond"
    assert model.canonical_lock("LatchManager._mutex") \
        == "LatchManager._cond"
    assert model.canonical_lock("LatchManager._other") \
        == "LatchManager._other"


def test_inherited_lockset_reaches_emit():
    # _emit never takes the lock lexically; every call site holds it
    analysis = ThreadAnalysis(shard_model())
    assert analysis._inherited["HealQueue._emit"] \
        == {"HealQueue._locks[·]"}
    # entries can always be called lock-free
    assert analysis._inherited["HealQueue.step"] == frozenset()


# ---------------------------------------------------------------------------
# happens-before edges
# ---------------------------------------------------------------------------

def edge_kinds(model):
    return {(e["kind"], e["src"][0], e["dst"][0])
            for e in model.hb_edges}


def test_put_get_pairing_on_the_worker_queues():
    kinds = edge_kinds(shard_model())
    assert ("put->get", "ShardWorkerPool.run_batch",
            "ShardWorkerPool._worker_loop") in kinds
    assert ("put->get", "ShardWorkerPool.close",
            "ShardWorkerPool._worker_loop") in kinds


def test_done_event_set_wait_pairing():
    # the worker's done.set() is untyped (unpacked from a queue tuple);
    # the eventish-name fallback must still pair it with the typed wait
    kinds = edge_kinds(shard_model())
    assert ("set->wait", "ShardWorkerPool._worker_loop",
            "ShardWorkerPool.run_batch") in kinds


def test_thread_start_join_pairing():
    kinds = edge_kinds(shard_model())
    assert ("start->join", "ShardWorkerPool.__init__",
            "ShardWorkerPool.close") in kinds


# ---------------------------------------------------------------------------
# spawn bookkeeping
# ---------------------------------------------------------------------------

def test_worker_threads_rooted_in_the_pool_attribute():
    model = shard_model()
    spawns = [s for mi in model.methods.values() for s in mi.spawns
              if s.kind == "thread" and s.method == "ShardWorkerPool.__init__"]
    assert spawns and spawns[0].root == "ShardWorkerPool._threads"
    assert spawns[0].role == "shard-worker"
    assert spawns[0].target == "ShardWorkerPool._worker_loop"


def test_model_cache_reuses_per_directory():
    first = shard_model()
    again = package_model(SRC / "shard" / "heal.py")
    assert first is again
