"""Unit tests for the crash-safety lint: each rule gets a violating and a
conforming sample, plus pragma suppression and the CLI front end."""

import json
import textwrap

from repro.analysis.lint import lint_paths
from repro.analysis.rules import all_rules
from repro.analysis.rules.exceptions import SwallowedErrorRule
from repro.analysis.rules.mutation import (
    DirectDataMutationRule,
    MissingMarkDirtyRule,
)
from repro.analysis.rules.pins import UnbalancedPinRule
from repro.analysis.rules.tokens import RawTokenComparisonRule
from repro.tools.lint import main as lint_main


def run(tmp_path, source, rules, filename="mod.py"):
    path = tmp_path / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_paths([path], rules)


def rule_ids(report):
    return [v.rule_id for v in report.violations]


# ---------------------------------------------------------------------------
# R001 — pin/unpin pairing
# ---------------------------------------------------------------------------

def test_r001_flags_unguarded_pin(tmp_path):
    report = run(tmp_path, """
        def bad(file, page):
            buf = file.pin(page)
            first = buf.data[0]
            file.unpin(buf)
            return first
    """, [UnbalancedPinRule()])
    assert rule_ids(report) == ["R001"]
    assert "'buf'" in report.violations[0].message


def test_r001_accepts_try_finally(tmp_path):
    report = run(tmp_path, """
        def good(file, page):
            buf = file.pin(page)
            try:
                return buf.data[0]
            finally:
                file.unpin(buf)
    """, [UnbalancedPinRule()])
    assert report.ok


def test_r001_accepts_immediate_unpin(tmp_path):
    report = run(tmp_path, """
        def good(file, page):
            buf = file.pin(page)
            file.unpin(buf)
    """, [UnbalancedPinRule()])
    assert report.ok


def test_r001_accepts_ownership_transfer(tmp_path):
    report = run(tmp_path, """
        def good(file, page):
            buf = file.pin(page)
            return buf

        def also_good(file, page, path):
            buf = file.pin(page)
            path.append(PathEntry(buf))
    """, [UnbalancedPinRule()])
    assert report.ok


def test_r001_tracks_aliases_and_tuple_binds(tmp_path):
    report = run(tmp_path, """
        def good(self, page):
            buf, view = self._pin(page)
            try:
                return view.n_keys
            finally:
                self._unpin(buf)

        def bad(self, page):
            buf, view = self._pin(page)
            count = view.n_keys
            self._note(count)
            return count
    """, [UnbalancedPinRule()])
    assert rule_ids(report) == ["R001"]
    assert report.violations[0].line == 10  # the pin inside bad(), not good()


# ---------------------------------------------------------------------------
# R002 — raw buf.data mutation outside the page layer
# ---------------------------------------------------------------------------

def test_r002_flags_raw_data_store(tmp_path):
    report = run(tmp_path, """
        def bad(buf):
            buf.data[0:2] = b"xx"
    """, [DirectDataMutationRule()])
    assert rule_ids(report) == ["R002"]


def test_r002_flags_pack_into(tmp_path):
    report = run(tmp_path, """
        import struct

        def bad(buf, offset):
            struct.Struct("<I").pack_into(buf.data, offset, 7)
    """, [DirectDataMutationRule()])
    assert rule_ids(report) == ["R002"]


def test_r002_exempts_the_page_layer(tmp_path):
    report = run(tmp_path, """
        def fine_here(buf):
            buf.data[0:2] = b"xx"
    """, [DirectDataMutationRule()], filename="storage/page.py")
    assert report.ok


def test_r002_allows_reads(tmp_path):
    report = run(tmp_path, """
        def good(buf):
            return buf.data[0:2]
    """, [DirectDataMutationRule()])
    assert report.ok


# ---------------------------------------------------------------------------
# R003 — mutation without mark_dirty in the same scope
# ---------------------------------------------------------------------------

def test_r003_flags_mutator_without_dirty(tmp_path):
    report = run(tmp_path, """
        def bad(self, buf, view):
            view.insert_item(0, b"key")
    """, [MissingMarkDirtyRule()])
    assert rule_ids(report) == ["R003"]


def test_r003_accepts_mark_dirty_in_scope(tmp_path):
    report = run(tmp_path, """
        def good(self, buf, view):
            view.insert_item(0, b"key")
            self.file.mark_dirty(buf)
    """, [MissingMarkDirtyRule()])
    assert report.ok


def test_r003_accepts_born_dirty_alloc(tmp_path):
    report = run(tmp_path, """
        def good(self):
            buf, view = self._alloc(1, 0)
            view.insert_item(0, b"key")
    """, [MissingMarkDirtyRule()])
    assert report.ok


def test_r003_flags_header_property_store(tmp_path):
    report = run(tmp_path, """
        def bad(self, view, peer):
            view.right_peer = peer
    """, [MissingMarkDirtyRule()])
    assert rule_ids(report) == ["R003"]


def test_r003_exempts_the_page_layer(tmp_path):
    report = run(tmp_path, """
        def fine_here(self, view):
            view.insert_item(0, b"key")
    """, [MissingMarkDirtyRule()], filename="core/nodeview.py")
    assert report.ok


# ---------------------------------------------------------------------------
# R004 — raw sync-token comparisons
# ---------------------------------------------------------------------------

def test_r004_flags_raw_token_comparison(tmp_path):
    report = run(tmp_path, """
        def bad(view, token):
            return view.sync_token >= token
    """, [RawTokenComparisonRule()])
    assert rule_ids(report) == ["R004"]


def test_r004_flags_counter_comparison(tmp_path):
    report = run(tmp_path, """
        def bad(view, state):
            return view.sync_token == state.counter
    """, [RawTokenComparisonRule()])
    assert rule_ids(report) == ["R004"]


def test_r004_accepts_helper_calls(tmp_path):
    report = run(tmp_path, """
        def good(view, state, token):
            if state.is_current(view.sync_token):
                return True
            return tokens_match(view.sync_token, token)
    """, [RawTokenComparisonRule()])
    assert report.ok


def test_r004_exempts_sync_module(tmp_path):
    report = run(tmp_path, """
        def helper(self, token):
            return token < self.counter
    """, [RawTokenComparisonRule()], filename="storage/sync.py")
    assert report.ok


def test_r004_ignores_non_token_comparisons(tmp_path):
    report = run(tmp_path, """
        def good(view):
            return view.n_keys >= 4
    """, [RawTokenComparisonRule()])
    assert report.ok


# ---------------------------------------------------------------------------
# R005 — swallowed protocol errors
# ---------------------------------------------------------------------------

def test_r005_flags_bare_except(tmp_path):
    report = run(tmp_path, """
        def bad(op):
            try:
                op()
            except:
                pass
    """, [SwallowedErrorRule()])
    assert rule_ids(report) == ["R005"]


def test_r005_flags_swallowed_exception(tmp_path):
    report = run(tmp_path, """
        def bad(op):
            try:
                op()
            except Exception:
                return None
    """, [SwallowedErrorRule()])
    assert rule_ids(report) == ["R005"]


def test_r005_accepts_reraise_and_specific(tmp_path):
    report = run(tmp_path, """
        def good(op, file, buf):
            try:
                op()
            except BaseException:
                file.unpin(buf)
                raise

        def also_good(op):
            try:
                op()
            except ReproError:
                return None
    """, [SwallowedErrorRule()])
    assert report.ok


# ---------------------------------------------------------------------------
# pragmas
# ---------------------------------------------------------------------------

def test_line_pragma_suppresses_that_line_only(tmp_path):
    report = run(tmp_path, """
        def f(buf):
            buf.data[0:2] = b"xx"  # lint: disable=R002
            buf.data[2:4] = b"yy"
    """, [DirectDataMutationRule()])
    assert len(report.violations) == 1
    assert report.violations[0].line == 4


def test_file_pragma_suppresses_whole_file(tmp_path):
    report = run(tmp_path, """
        # this module pokes bytes on purpose
        # lint: disable=R002

        def f(buf):
            buf.data[0:2] = b"xx"
            buf.data[2:4] = b"yy"
    """, [DirectDataMutationRule()])
    assert report.ok


def test_pragma_for_other_rule_does_not_suppress(tmp_path):
    report = run(tmp_path, """
        def f(buf):
            buf.data[0:2] = b"xx"  # lint: disable=R003
    """, [DirectDataMutationRule()])
    assert rule_ids(report) == ["R002"]


# ---------------------------------------------------------------------------
# the repository itself and the CLI
# ---------------------------------------------------------------------------

def test_repository_is_lint_clean():
    report = lint_paths(["src"], all_rules())
    assert report.ok, report.render_text()


def test_cli_exit_codes_and_json(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(buf):\n    buf.data[0] = 1\n")
    assert lint_main([str(bad)]) == 1
    capsys.readouterr()

    assert lint_main([str(bad), "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    # both the pattern engine (R003) and the flow engine (R012) fire on
    # the raw .data write, but they are one dirty-family finding at one
    # line: --engine all keeps the witness-bearing flow form only
    assert {v["rule"] for v in payload["violations"]} \
        == {"R002", "R012"}

    good = tmp_path / "good.py"
    good.write_text("def f():\n    return 1\n")
    assert lint_main([str(good)]) == 0
    capsys.readouterr()

    assert lint_main(["--rules", "R999"]) == 2


def test_cli_rule_subset_and_listing(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(buf):\n    buf.data[0] = 1\n")
    # R002 finding is invisible to an R005-only run
    assert lint_main([str(bad), "--rules", "R005"]) == 0
    capsys.readouterr()

    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("R001", "R002", "R003", "R004", "R005"):
        assert rule_id in out
