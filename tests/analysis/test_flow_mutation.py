"""Mutation self-tests for the flow engine, against the real source.

Each test seeds one protocol bug into a copy of a production module,
runs the one flow rule that owns that discipline, and demands the
finding — with a concrete witness path — comes back.  This is the
engine's ground truth: if a refactor ever blinds a rule, the mutant
stops being caught and the suite says so.
"""

import ast
from pathlib import Path

from repro.analysis.flow import flow_rules
from repro.analysis.flow.rules import (
    LatchAcrossBlockingPathRule,
    NoteBeforeDirtyOnPathRule,
    PinLeakOnPathRule,
    WriteWithoutDirtyOnPathRule,
)
from repro.analysis.lint import lint_paths

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"
BTREE_SRC = SRC / "core" / "btree_base.py"
CONCURRENCY_SRC = SRC / "core" / "concurrency.py"


def lint_mutant(tmp_path, mutant_source, rule):
    path = tmp_path / "mutant.py"
    path.write_text(mutant_source)
    return lint_paths([path], [rule])


def extract_method(source, name):
    """One method from *source*, re-wrapped in a stub class.  Linting the
    extraction alone strips the surrounding file's interprocedural
    summaries, so sibling helpers that happen to reach dirty evidence
    (``_ensure_peer_path`` marks peers dirty while healing) stop
    vouching for the path under test."""
    tree = ast.parse(source)
    fn = next(node for node in ast.walk(tree)
              if isinstance(node, ast.FunctionDef) and node.name == name)
    return "class T:\n    " + ast.get_source_segment(source, fn) + "\n"


def witness_notes(violation):
    return [note for _, note in violation.witness]


def test_real_sources_are_flow_clean():
    report = lint_paths([BTREE_SRC, CONCURRENCY_SRC], flow_rules())
    assert report.ok, report.render_text()


def test_deleted_finally_unpin_is_caught_as_r011(tmp_path):
    """Empty out ``close_clean``'s finally: the meta pin now leaks on
    every exit and R011 must say so, naming the pin and the exit."""
    source = BTREE_SRC.read_text()
    mutant = source.replace(
        """            meta.store_freelist(self.file.freelist.entries())
            self.file.mark_dirty(mbuf)
        finally:
            self.file.unpin(mbuf)""",
        """            meta.store_freelist(self.file.freelist.entries())
            self.file.mark_dirty(mbuf)
        finally:
            pass""")
    assert mutant != source, "mutation site moved; update the self-test"
    report = lint_mutant(tmp_path, mutant, PinLeakOnPathRule())
    flagged = [v for v in report.violations if v.rule_id == "R011"]
    assert flagged, report.render_text()
    v = flagged[0]
    assert "'mbuf'" in v.message
    assert "pin 'mbuf'" in witness_notes(v)
    assert any("still held" in n for n in witness_notes(v))


def test_dropped_mark_dirty_is_caught_as_r012(tmp_path):
    """Drop ``close_clean``'s dirty-mark: the freelist snapshot it just
    stored into the meta page now reaches the exit on a clean buffer."""
    source = BTREE_SRC.read_text()
    mutant = source.replace(
        """            meta.store_freelist(self.file.freelist.entries())
            self.file.mark_dirty(mbuf)""",
        """            meta.store_freelist(self.file.freelist.entries())""")
    assert mutant != source, "mutation site moved; update the self-test"
    report = lint_mutant(tmp_path, mutant, WriteWithoutDirtyOnPathRule())
    flagged = [v for v in report.violations if v.rule_id == "R012"]
    assert flagged, report.render_text()
    v = flagged[0]
    assert any("mutation" in n for n in witness_notes(v))
    assert not any("dirty evidence" in n for n in witness_notes(v))


def test_reordered_note_before_dirty_is_caught_as_r015(tmp_path):
    """Move ``note_insert`` ahead of the dirty-mark in ``_finger_insert``:
    the fast-path cache restamp now runs on a path whose buffer is still
    clean.  The method is linted in extraction (see
    :func:`extract_method`) because inside its own file the preceding
    ``_ensure_peer_path`` call legitimately carries dirty evidence."""
    source = extract_method(BTREE_SRC.read_text(), "_finger_insert")
    assert lint_mutant(tmp_path, source, NoteBeforeDirtyOnPathRule()).ok
    mutant = source.replace(
        """            entry.view.insert_item(slot, item)
            self._dirty(entry.buffer)
            if keys is not None:
                self._fastpath.note_insert(entry.buffer, slot, key, keys)
            return True""",
        """            entry.view.insert_item(slot, item)
            if keys is not None:
                self._fastpath.note_insert(entry.buffer, slot, key, keys)
            self._dirty(entry.buffer)
            return True""")
    assert mutant != source, "mutation site moved; update the self-test"
    report = lint_mutant(tmp_path, mutant, NoteBeforeDirtyOnPathRule())
    flagged = [v for v in report.violations if v.rule_id == "R015"]
    assert flagged, report.render_text()
    v = flagged[0]
    assert "note_insert" in v.message
    assert any("note_insert" in n for n in witness_notes(v))


def test_swallowed_latch_release_is_caught_as_r014(tmp_path):
    """Replace ConcurrentTree.lookup's finally-release with a swallowing
    handler: the read latch leaks on both the normal return and the
    swallowed-exception path."""
    source = CONCURRENCY_SRC.read_text()
    mutant = source.replace(
        """        self.latches.acquire_read(TREE_LATCH_PAGE)
        try:
            return self.tree.lookup(value)
        finally:
            self.latches.release(TREE_LATCH_PAGE)""",
        """        self.latches.acquire_read(TREE_LATCH_PAGE)
        try:
            return self.tree.lookup(value)
        except Exception:
            return None""")
    assert mutant != source, "mutation site moved; update the self-test"
    report = lint_mutant(tmp_path, mutant, LatchAcrossBlockingPathRule())
    flagged = [v for v in report.violations if v.rule_id == "R014"]
    assert flagged, report.render_text()
    v = flagged[0]
    assert "still held" in v.message
    assert any("acquire" in n for n in witness_notes(v))
