"""Mutation self-tests for R016–R020: each rule must catch a designed
concurrency defect injected into the *real* ``repro.shard`` source —
with a concrete thread-role on the finding and a witness path — and
the pristine tree must stay clean.  This is the evidence the analyzer
finds the bug class it claims to find, not just its synthetic shape."""

import shutil
from pathlib import Path

from repro.analysis.lint import lint_paths
from repro.analysis.threads import threads_rules
from repro.analysis.threads.rules import (
    BlockingUnderLockRule,
    CheckThenActRule,
    ConditionWaitLoopRule,
    InconsistentLocksetRule,
    UnjoinedThreadRule,
)

SHARD_SRC = Path(__file__).resolve().parents[2] / "src" / "repro" / "shard"

#: the shutdown join in ShardWorkerPool.close — moved or deleted by two
#: of the mutants below
JOIN_BLOCK = """\
        # join outside the lock — a blocking wait under the lifecycle
        # lock would stall every concurrent submitter for the full
        # drain (and close() never needs the lock again)
        for thread in self._threads:
            thread.join(timeout=30)"""


def mutate(tmp_path, filename: str, old: str, new: str) -> Path:
    """Copy the real shard package, apply one textual mutation, return
    the mutated file (the package siblings ride along so thread-role
    inference still sees the spawns)."""
    pkg = tmp_path / "shard"
    pkg.mkdir()
    for path in SHARD_SRC.glob("*.py"):
        shutil.copy(path, pkg / path.name)
    target = pkg / filename
    source = target.read_text()
    assert source.count(old) == 1, \
        f"mutation anchor not unique/found in {filename}"
    target.write_text(source.replace(old, new))
    return target


def findings(path, rules):
    return lint_paths([path], rules).violations


def the_finding(path, rules, rule_id):
    got = findings(path, rules)
    matching = [v for v in got if v.rule_id == rule_id]
    assert matching, f"{rule_id} did not fire on the mutant"
    return matching[0]


# ---------------------------------------------------------------------------
# R016 — drop the lock around note_op's crash-window write
# ---------------------------------------------------------------------------

def test_r016_catches_unlocked_crash_window_write(tmp_path):
    target = mutate(
        tmp_path, "scheduler.py",
        "            with self._lock:\n"
        "                self.crash_windows[shard_index] = self.window + 1",
        "            self.crash_windows[shard_index] = self.window + 1")
    v = the_finding(target, [InconsistentLocksetRule()], "R016")
    assert "crash_windows" in v.message
    assert "'shard-worker'" in v.message and "'caller'" in v.message
    notes = [n for _, n in v.witness]
    # the witness derives the worker role from the real spawn
    assert any("spawns" in n for n in notes)
    assert any("crash_windows" in n for n in notes)


# ---------------------------------------------------------------------------
# R017 — move the shutdown join inside the lifecycle lock
# ---------------------------------------------------------------------------

def test_r017_catches_join_under_lifecycle_lock(tmp_path):
    target = mutate(
        tmp_path, "workers.py", JOIN_BLOCK,
        "            for thread in self._threads:\n"
        "                thread.join(timeout=30)")
    v = the_finding(target, [BlockingUnderLockRule()], "R017")
    assert "Thread.join()" in v.message
    assert "ShardWorkerPool._lifecycle" in v.message


# ---------------------------------------------------------------------------
# R018 — delete the shutdown join entirely
# ---------------------------------------------------------------------------

def test_r018_catches_never_joined_workers(tmp_path):
    target = mutate(tmp_path, "workers.py", JOIN_BLOCK, "")
    v = the_finding(target, [UnjoinedThreadRule()], "R018")
    assert "'shard-worker'" in v.message
    assert "ShardWorkerPool._threads" in v.message
    assert any("spawns" in n for _, n in v.witness)


# ---------------------------------------------------------------------------
# R019 — turn the barrier's locked store into a racy check-then-act
# ---------------------------------------------------------------------------

def test_r019_catches_racy_crash_window_update(tmp_path):
    target = mutate(
        tmp_path, "scheduler.py",
        "                with self._lock:\n"
        "                    self.crash_windows[index] = window",
        "                if index not in self.crash_windows \\\n"
        "                        or self.crash_windows[index] < window:\n"
        "                    self.crash_windows[index] = window")
    v = the_finding(target, [CheckThenActRule()], "R019")
    assert "crash_windows" in v.message
    notes = [n for _, n in v.witness]
    assert any("branch test reads" in n for n in notes)
    assert any("governed write" in n for n in notes)


# ---------------------------------------------------------------------------
# R020 — park the worker on a bare Condition.wait
# ---------------------------------------------------------------------------

def test_r020_catches_bare_wait_in_worker_loop(tmp_path):
    target = mutate(
        tmp_path, "workers.py",
        "    def _worker_loop(self, shard_index: int) -> None:\n"
        "        q = self._queues[shard_index]\n"
        "        while True:",
        "    def _worker_loop(self, shard_index: int) -> None:\n"
        "        q = self._queues[shard_index]\n"
        "        ready = threading.Condition()\n"
        "        with ready:\n"
        "            if q.empty():\n"
        "                ready.wait(0.01)\n"
        "        while True:")
    v = the_finding(target, [ConditionWaitLoopRule()], "R020")
    assert "'shard-worker'" in v.message
    assert "predicate loop" in v.message


# ---------------------------------------------------------------------------
# pristine source stays clean
# ---------------------------------------------------------------------------

def test_pristine_shard_package_is_clean():
    report = lint_paths([SHARD_SRC], threads_rules())
    assert report.ok, report.render_text()


def test_threads_engine_clean_over_repository():
    report = lint_paths(
        [Path(__file__).resolve().parents[2] / "src"], threads_rules())
    assert report.ok, report.render_text()
