"""CFG builder edge cases — the shapes the flow engine leans on.

Each test lowers a small function and asserts directly against the edge
set (addressed by node label via :meth:`CFG.edge_labels`, the stable
form: duplicated ``finally`` statements share labels, so membership
checks see every instance's edges).
"""

import ast
import textwrap

from repro.analysis.flow import build_cfg
from repro.analysis.flow.cfg import MAX_NODES


def cfg_of(source, name=None):
    tree = ast.parse(textwrap.dedent(source))
    fns = [node for node in ast.walk(tree)
           if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]
    fn = fns[0] if name is None else \
        next(f for f in fns if f.name == name)
    return build_cfg(fn)


def out_kinds(cfg, label):
    return {kind for src, kind, _ in cfg.edge_labels() if src == label}


# ---------------------------------------------------------------------------
# finally: per-continuation instances
# ---------------------------------------------------------------------------

def test_finally_with_reraise_in_handler():
    cfg = cfg_of("""
        def f(op, file, buf):
            try:
                op()
            except ValueError:
                file.log()
                raise
            finally:
                file.unpin(buf)
    """)
    edges = cfg.edge_labels()
    # the raising body statement dispatches to the handler table
    assert ("stmt:4", "exc", "dispatch:3") in edges
    assert ("dispatch:3", "next", "except:5") in edges
    # an unmatched exception (not ValueError) runs the finally's
    # exception-path instance, as does the handler's bare re-raise
    assert ("dispatch:3", "exc", "finally:3:exc") in edges
    assert ("stmt:7", "exc", "finally:3:exc") in edges
    assert ("finally:3:exc", "next", "stmt:9") in edges
    # the normal continuation gets its own instance of the same body
    assert ("stmt:4", "next", "finally:3:normal") in edges
    assert ("finally:3:normal", "next", "stmt:9") in edges
    # the shared-label finally body exits towards BOTH continuations
    assert ("stmt:9", "next", "raise") in edges
    assert ("stmt:9", "next", "exit") in edges


def test_return_inside_try_instantiates_return_finally():
    cfg = cfg_of("""
        def f(file, page):
            buf = file.pin(page)
            try:
                return file.read(buf)
            finally:
                file.unpin(buf)
    """)
    assert "finally:4:return" in cfg.labels()
    edges = cfg.edge_labels()
    assert ("stmt:5", "next", "finally:4:return") in edges
    assert ("finally:4:return", "next", "stmt:7") in edges
    assert ("stmt:7", "next", "exit") in edges
    # the return's value expression may raise -> exception instance too
    assert ("stmt:5", "exc", "finally:4:exc") in edges


def test_return_inside_except_unwinds_through_finally():
    cfg = cfg_of("""
        def g(op, file, buf):
            try:
                op()
            except ValueError:
                return None
            finally:
                file.unpin(buf)
    """)
    labels = cfg.labels()
    # three continuations actually occur: normal, exception, return
    assert {"finally:3:normal", "finally:3:exc",
            "finally:3:return"} <= labels
    edges = cfg.edge_labels()
    assert ("except:5", "next", "stmt:6") in edges
    assert ("stmt:6", "next", "finally:3:return") in edges
    assert ("finally:3:return", "next", "stmt:8") in edges
    assert ("stmt:8", "next", "exit") in edges


def test_return_inside_except_without_finally():
    cfg = cfg_of("""
        def f(op):
            try:
                return op()
            except ValueError:
                return None
    """)
    edges = cfg.edge_labels()
    assert ("stmt:4", "exc", "dispatch:3") in edges
    assert ("stmt:4", "next", "exit") in edges
    assert ("dispatch:3", "next", "except:5") in edges
    assert ("except:5", "next", "stmt:6") in edges
    assert ("stmt:6", "next", "exit") in edges
    # ValueError is not a catch-all: the miss keeps propagating
    assert ("dispatch:3", "exc", "raise") in edges


def test_break_and_continue_instantiate_their_own_finally():
    cfg = cfg_of("""
        def f(items, file, page):
            for item in items:
                buf = file.pin(page)
                try:
                    if item:
                        continue
                    break
                finally:
                    file.unpin(buf)
    """)
    labels = cfg.labels()
    assert {"finally:5:continue", "finally:5:break"} <= labels
    edges = cfg.edge_labels()
    # continue re-enters the loop AFTER its finally instance ran
    assert ("finally:5:continue", "next", "stmt:10") in edges
    assert ("stmt:10", "back", "loop:3") in edges
    # break leaves the loop after its own instance
    assert ("finally:5:break", "next", "stmt:10") in edges
    assert ("stmt:10", "next", "exit") in edges


# ---------------------------------------------------------------------------
# loops
# ---------------------------------------------------------------------------

def test_while_else_runs_on_normal_exhaustion():
    cfg = cfg_of("""
        def f(items, log):
            while items:
                items.pop()
            else:
                log.flush()
            return None
    """)
    edges = cfg.edge_labels()
    assert ("loop:3", "true", "stmt:4") in edges
    assert ("stmt:4", "back", "loop:3") in edges
    # the else arm hangs off the loop's false edge, before the tail
    assert ("loop:3", "false", "stmt:6") in edges
    assert ("stmt:6", "next", "stmt:7") in edges
    assert ("stmt:7", "next", "exit") in edges


def test_while_true_has_no_false_edge():
    cfg = cfg_of("""
        def f(items):
            while True:
                if not items:
                    break
                items.pop()
    """)
    edges = cfg.edge_labels()
    assert "false" not in out_kinds(cfg, "loop:3")
    # the break is the only way out
    assert ("branch:4", "true", "stmt:5") in edges
    assert ("stmt:5", "next", "exit") in edges
    assert ("branch:4", "false", "stmt:6") in edges
    assert ("stmt:6", "back", "loop:3") in edges


def test_for_else_and_break_bypasses_else():
    cfg = cfg_of("""
        def f(items, log):
            for item in items:
                if item:
                    break
            else:
                log.flush()
    """)
    edges = cfg.edge_labels()
    # exhaustion runs the else; break jumps straight past it
    assert ("loop:3", "false", "stmt:7") in edges
    assert ("stmt:7", "next", "exit") in edges
    assert ("stmt:5", "next", "exit") in edges
    assert not any(src == "stmt:5" and dst == "stmt:7"
                   for src, _, dst in edges)


# ---------------------------------------------------------------------------
# with blocks
# ---------------------------------------------------------------------------

def test_nested_with_releases_inner_then_outer_on_exception():
    cfg = cfg_of("""
        def f(file, a, b, op):
            with file.pinned(a) as ba:
                with file.pinned(b) as bb:
                    op(ba, bb)
    """)
    edges = cfg.edge_labels()
    # entering the inner manager may raise while only the outer is live
    assert ("with-enter:4", "exc", "with-exit:3:exc") in edges
    # a body exception runs inner exit, then outer exit, then escapes
    assert ("stmt:5", "exc", "with-exit:4:exc") in edges
    assert ("with-exit:4:exc", "exc", "with-exit:3:exc") in edges
    assert ("with-exit:3:exc", "exc", "raise") in edges
    # the normal path runs both exits inside-out as well
    assert ("stmt:5", "next", "with-exit:4:normal") in edges
    assert ("with-exit:4:normal", "next", "with-exit:3:normal") in edges
    assert ("with-exit:3:normal", "next", "exit") in edges


def test_return_inside_with_runs_exit_first():
    cfg = cfg_of("""
        def f(file, a):
            with file.pinned(a) as buf:
                return buf.data[0]
    """)
    edges = cfg.edge_labels()
    assert ("stmt:4", "next", "with-exit:3:return") in edges
    assert ("with-exit:3:return", "next", "exit") in edges


# ---------------------------------------------------------------------------
# generators, no-return calls, release-only statements
# ---------------------------------------------------------------------------

def test_yield_gets_an_exception_edge():
    # close()/throw() can inject GeneratorExit at the yield point; a
    # pin held across a yield therefore needs the finally
    cfg = cfg_of("""
        def gen(file, page):
            buf = file.pin(page)
            try:
                yield buf.data
            finally:
                file.unpin(buf)
    """)
    edges = cfg.edge_labels()
    assert ("stmt:5", "exc", "finally:4:exc") in edges
    assert ("stmt:5", "next", "finally:4:normal") in edges


def test_pytest_skip_never_falls_through():
    cfg = cfg_of("""
        def f(cond):
            if cond:
                pytest.skip("nope")
            return 1
    """)
    edges = cfg.edge_labels()
    assert ("stmt:4", "exc", "raise") in edges
    assert "next" not in out_kinds(cfg, "stmt:4")
    # the other arm still reaches the return
    assert ("branch:3", "false", "stmt:5") in edges


def test_sys_exit_is_noreturn_but_bare_exit_is_not():
    cfg = cfg_of("""
        def f():
            sys.exit(1)
    """)
    assert out_kinds(cfg, "stmt:3") == {"exc"}
    cfg = cfg_of("""
        def g(exit):
            exit(1)
            return 2
    """)
    assert ("stmt:3", "next", "stmt:4") in cfg.edge_labels()


def test_bare_release_calls_have_no_exception_edge():
    cfg = cfg_of("""
        def f(file, a, b):
            file.unpin(a)
            file.unpin(b)
    """)
    assert out_kinds(cfg, "stmt:3") == {"next"}
    assert out_kinds(cfg, "stmt:4") == {"next"}


def test_release_with_raising_argument_keeps_its_exc_edge():
    cfg = cfg_of("""
        def f(file, frames):
            file.unpin(frames.pop())
    """)
    assert "exc" in out_kinds(cfg, "stmt:3")


# ---------------------------------------------------------------------------
# guard rails
# ---------------------------------------------------------------------------

def test_raise_statement_targets_innermost_handler():
    cfg = cfg_of("""
        def f(log):
            try:
                raise ValueError("x")
            except ValueError:
                log.note()
    """)
    edges = cfg.edge_labels()
    assert ("stmt:4", "exc", "dispatch:3") in edges
    assert "next" not in out_kinds(cfg, "stmt:4")


def test_oversized_function_is_flagged_not_built():
    body = "\n".join(f"    x{i} = {i}" for i in range(MAX_NODES + 50))
    cfg = cfg_of(f"def f():\n{body}\n")
    assert cfg.too_big
