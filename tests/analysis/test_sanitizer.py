"""The runtime sanitizer catches deliberately injected protocol violations.

Each test builds a healthy engine under ``sanitized()`` and then breaks one
rule on purpose: the sanitizer must name the violation, and the matching
conforming sequence must pass untouched.
"""

# these tests inject R001/R002/R003 violations on purpose — the runtime
# sanitizer, not the linter, is the checker being proven here (R012 is
# the path-sensitive form of the injected dirty violations)
# lint: disable=R001,R002,R003,R012

import gc

import pytest

from repro import TREE_CLASSES, StorageEngine, TID
from repro.analysis.sanitizer import SanitizerError, sanitized, suspended
from repro.constants import PAGE_LEAF
from repro.core.meta import MetaView
from repro.core.nodeview import NodeView

PAGE = 512


def make_tree(kind="shadow", name="ix", seed=7):
    engine = StorageEngine.create(page_size=PAGE, seed=seed)
    tree = TREE_CLASSES[kind].create(engine, name, codec="uint32")
    for i in range(50):
        tree.insert(i, TID(1, i))
    engine.sync()
    return engine, tree


# ---------------------------------------------------------------------------
# mutated-but-clean frames (runtime R003)
# ---------------------------------------------------------------------------

def test_mutation_without_mark_dirty_fails_the_next_sync():
    with sanitized():
        engine, tree = make_tree()
        buf = tree.file.pin_meta()
        buf.data[100] ^= 0xFF  # mutate, "forget" mark_dirty
        tree.file.unpin(buf)
        with pytest.raises(SanitizerError, match="never marked dirty"):
            engine.sync()


def test_marked_dirty_mutation_is_fine():
    with sanitized():
        engine, tree = make_tree()
        buf = tree.file.pin_meta()
        buf.data[100] ^= 0xFF
        tree.file.mark_dirty(buf)
        tree.file.unpin(buf)
        engine.sync()


def test_note_volatile_exempts_the_deliberate_divergence():
    with sanitized():
        engine, tree = make_tree()
        buf = tree.file.pin_meta()
        buf.data[100] ^= 0xFF
        tree.file.pool.note_volatile(buf)
        tree.file.unpin(buf)
        engine.sync()  # exempted: the divergence is declared
        # marking the frame dirty retires the declaration and the next
        # sync writes the bytes out, converging buffer and disk again
        buf = tree.file.pin_meta()
        tree.file.mark_dirty(buf)
        tree.file.unpin(buf)
        engine.sync()


def test_suspended_disables_the_checks():
    with sanitized():
        engine, tree = make_tree()
        buf = tree.file.pin_meta()
        buf.data[100] ^= 0xFF
        tree.file.unpin(buf)
        with suspended():
            engine.sync()


# ---------------------------------------------------------------------------
# pin balance (runtime R001)
# ---------------------------------------------------------------------------

def test_leaked_pin_is_caught_at_op_exit():
    with sanitized():
        engine, tree = make_tree()
        tree.file.unpin = lambda buf: None  # drop every release
        with pytest.raises(SanitizerError, match="pin leaked"):
            tree.lookup(3)


def test_balanced_ops_pass():
    with sanitized():
        engine, tree = make_tree()
        assert tree.lookup(3) == TID(1, 3)
        tree.insert(1000, TID(2, 1))
        tree.delete(1000)


# ---------------------------------------------------------------------------
# premature backup-space reclaim (Section 3.4)
# ---------------------------------------------------------------------------

def test_reclaim_of_never_synced_backup_is_caught():
    gc.collect()  # the check needs exactly one live engine
    with sanitized():
        engine, tree = make_tree(kind="reorg")
        state = engine.sync_state
        raw = bytearray(PAGE)
        view = NodeView(raw, PAGE)
        # a freshly split page: its token still equals the counter, so no
        # sync has committed the split — the backup keys are the only
        # durable copy and reclaiming them now is the paper's 3.4 bug
        view.init_page(PAGE_LEAF, sync_token=state.token())
        view.prev_n_keys = 3
        with pytest.raises(SanitizerError, match="never synced"):
            view.reclaim_backup()


def test_reclaim_after_a_sync_is_fine():
    gc.collect()
    with sanitized():
        engine, tree = make_tree(kind="reorg")
        state = engine.sync_state
        raw = bytearray(PAGE)
        view = NodeView(raw, PAGE)
        view.init_page(PAGE_LEAF, sync_token=state.token())
        view.prev_n_keys = 3
        state.note_split()
        engine.sync()  # advances the counter: the split token is durable
        view.reclaim_backup()
        assert view.prev_n_keys == 0


# ---------------------------------------------------------------------------
# durable backup-clear ordering (SanitizedDisk)
# ---------------------------------------------------------------------------

def _backup_page(state, *, prev_n_keys, new_page):
    raw = bytearray(PAGE)
    view = NodeView(raw, PAGE)
    view.init_page(PAGE_LEAF, sync_token=state.token())
    view.prev_n_keys = prev_n_keys
    view.new_page = new_page
    return raw


def test_disk_rejects_backup_clear_while_sibling_not_durable():
    gc.collect()
    with sanitized():
        engine, tree = make_tree(kind="reorg")
        disk = tree.file.disk
        state = engine.sync_state
        disk.write_page(5, bytes(_backup_page(state, prev_n_keys=3,
                                              new_page=7)))
        clear = bytearray(PAGE)
        NodeView(clear, PAGE).init_page(PAGE_LEAF, sync_token=state.token())
        with pytest.raises(SanitizerError, match="sibling 7 is not durable"):
            disk.write_page(5, bytes(clear))


def test_disk_accepts_backup_clear_once_sibling_is_durable():
    gc.collect()
    with sanitized():
        engine, tree = make_tree(kind="reorg")
        disk = tree.file.disk
        state = engine.sync_state
        disk.write_page(5, bytes(_backup_page(state, prev_n_keys=3,
                                              new_page=7)))
        sibling = bytearray(PAGE)
        NodeView(sibling, PAGE).init_page(PAGE_LEAF,
                                          sync_token=state.token())
        disk.write_page(7, bytes(sibling))
        clear = bytearray(PAGE)
        NodeView(clear, PAGE).init_page(PAGE_LEAF, sync_token=state.token())
        disk.write_page(5, bytes(clear))  # sibling durable: legal


# ---------------------------------------------------------------------------
# free-time checks
# ---------------------------------------------------------------------------

def test_freeing_the_live_root_is_caught():
    with sanitized():
        engine, tree = make_tree()
        mbuf = tree.file.pin_meta()
        try:
            root = MetaView(mbuf.data, PAGE).root
        finally:
            tree.file.unpin(mbuf)
        with pytest.raises(SanitizerError, match="live root"):
            tree.file.free(root)


def test_normal_frees_pass():
    with sanitized():
        engine, tree = make_tree()
        for i in range(50):
            tree.delete(i)
        engine.sync()  # deletes reclaim pages through the legal paths
