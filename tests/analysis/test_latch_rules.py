"""Unit tests for the latch-protocol lint rules (R006–R009), including
the mutation self-test: deleting the split-lock acquisition from the real
``ConcurrentTree`` source must be caught by R006."""

import re
import textwrap
from pathlib import Path

from repro.analysis.lint import lint_paths
from repro.analysis.rules import all_rules
from repro.analysis.rules.latches import (
    BlockingUnderReadLatchRule,
    LatchReleaseOnExceptionRule,
    PinBeforeUnlatchRule,
    SplitLockOrderRule,
)

CONCURRENCY_SRC = (Path(__file__).resolve().parents[2]
                   / "src" / "repro" / "core" / "concurrency.py")


def run(tmp_path, source, rules, filename="mod.py"):
    path = tmp_path / filename
    path.write_text(textwrap.dedent(source))
    return lint_paths([path], rules)


def rule_ids(report):
    return [v.rule_id for v in report.violations]


# ---------------------------------------------------------------------------
# R006 — split lock strictly before the write latch
# ---------------------------------------------------------------------------

def test_r006_split_acquire_under_write_latch(tmp_path):
    report = run(tmp_path, """
        def bad(self):
            self.latches.acquire_write(3)
            try:
                self.split_lock.acquire()
                try:
                    pass
                finally:
                    self.split_lock.release()
            finally:
                self.latches.release(3)
        """, [SplitLockOrderRule()])
    assert rule_ids(report) == ["R006"]


def test_r006_split_capable_call_without_split_lock(tmp_path):
    report = run(tmp_path, """
        def bad(self, value, tid):
            self.latches.acquire_write(0)
            try:
                self.tree.insert(value, tid)
            finally:
                self.latches.release(0)
        """, [SplitLockOrderRule()])
    assert rule_ids(report) == ["R006"]


def test_r006_transitive_through_local_helper(tmp_path):
    report = run(tmp_path, """
        def helper(self):
            self.split_lock.acquire()

        def bad(self):
            self.latches.acquire_write(1)
            try:
                self.helper()
            finally:
                self.latches.release(1)
        """, [SplitLockOrderRule()])
    assert rule_ids(report) == ["R006"]


def test_r006_correct_order_clean(tmp_path):
    report = run(tmp_path, """
        def good(self, value, tid):
            self.split_lock.acquire(self.latches)
            try:
                self.latches.acquire_write(0)
                try:
                    self.tree.insert(value, tid)
                finally:
                    self.latches.release(0)
            finally:
                self.split_lock.release()
        """, [SplitLockOrderRule()])
    assert report.ok


def test_r006_plain_list_insert_not_flagged(tmp_path):
    report = run(tmp_path, """
        def fine(self, items, value):
            self.latches.acquire_write(0)
            try:
                items.insert(0, value)
            finally:
                self.latches.release(0)
        """, [SplitLockOrderRule()])
    assert report.ok


# ---------------------------------------------------------------------------
# R007 — pin the child before releasing the parent's latch
# ---------------------------------------------------------------------------

def test_r007_unlatch_before_pin(tmp_path):
    report = run(tmp_path, """
        def descend(self, page):
            self.latches.acquire_read(page)
            child = self.child_of(page)
            self.latches.release(page)
            return self.file.pin(child)
        """, [PinBeforeUnlatchRule()])
    assert rule_ids(report) == ["R007"]


def test_r007_pin_then_unlatch_clean(tmp_path):
    report = run(tmp_path, """
        def descend(self, page):
            self.latches.acquire_read(page)
            try:
                child = self.child_of(page)
                buf = self.file.pin(child)
            finally:
                self.latches.release(page)
            return buf
        """, [PinBeforeUnlatchRule()])
    assert report.ok


def test_r007_ignores_functions_without_latches(tmp_path):
    report = run(tmp_path, """
        def leaf_scan(self, page):
            buf = self.file.pin(page)
            self.file.unpin(buf)
        """, [PinBeforeUnlatchRule()])
    assert report.ok


# ---------------------------------------------------------------------------
# R008 — no blocking calls under a read latch
# ---------------------------------------------------------------------------

def test_r008_sync_under_read_latch(tmp_path):
    report = run(tmp_path, """
        def bad(self, key):
            self.latches.acquire_read(1)
            try:
                self.engine.sync()
            finally:
                self.latches.release(1)
        """, [BlockingUnderReadLatchRule()])
    assert rule_ids(report) == ["R008"]


def test_r008_read_latch_coupling_flagged(tmp_path):
    report = run(tmp_path, """
        def bad(self):
            self.latches.acquire_read(1)
            self.latches.acquire_read(2)
            self.latches.release(2)
            self.latches.release(1)
        """, [BlockingUnderReadLatchRule()])
    assert rule_ids(report) == ["R008"]


def test_r008_sync_after_release_clean(tmp_path):
    report = run(tmp_path, """
        def good(self, key):
            self.latches.acquire_read(1)
            try:
                value = self.probe(key)
            finally:
                self.latches.release(1)
            self.engine.sync()
            return value
        """, [BlockingUnderReadLatchRule()])
    assert report.ok


# ---------------------------------------------------------------------------
# R009 — release reachable on every exception edge
# ---------------------------------------------------------------------------

def test_r009_no_finally(tmp_path):
    report = run(tmp_path, """
        def leaky(self, page):
            self.latches.acquire_write(page)
            self.mutate(page)
            self.more(page)
            self.latches.release(page)
        """, [LatchReleaseOnExceptionRule()])
    assert rule_ids(report) == ["R009"]


def test_r009_split_lock_without_finally(tmp_path):
    report = run(tmp_path, """
        def leaky(self):
            self.split_lock.acquire()
            self.do_split()
            self.unrelated()
            self.split_lock.release()
        """, [LatchReleaseOnExceptionRule()])
    assert rule_ids(report) == ["R009"]


def test_r009_try_finally_clean(tmp_path):
    report = run(tmp_path, """
        def good(self, page):
            self.latches.acquire_write(page)
            try:
                self.mutate(page)
            finally:
                self.latches.release(page)
        """, [LatchReleaseOnExceptionRule()])
    assert report.ok


def test_r009_immediate_release_clean(tmp_path):
    report = run(tmp_path, """
        def touch(self, page):
            self.latches.acquire_read(page)
            self.latches.release(page)
        """, [LatchReleaseOnExceptionRule()])
    assert report.ok


def test_r009_with_statement_clean(tmp_path):
    report = run(tmp_path, """
        def good(self):
            with self.split_lock:
                self.do_split()
        """, [LatchReleaseOnExceptionRule()])
    assert report.ok


# ---------------------------------------------------------------------------
# pragmas and registry
# ---------------------------------------------------------------------------

def test_latch_rules_registered():
    ids = [rule.rule_id for rule in all_rules()]
    start = ids.index("R006")
    assert ["R006", "R007", "R008", "R009"] == ids[start:start + 4]


def test_pragma_suppresses_latch_rule(tmp_path):
    report = run(tmp_path, """
        def bad(self, page):
            self.latches.acquire_write(page)  # lint: disable=R009
            self.mutate(page)
            self.more(page)
            self.latches.release(page)
        """, [LatchReleaseOnExceptionRule()])
    assert report.ok


# ---------------------------------------------------------------------------
# mutation self-tests against the real source
# ---------------------------------------------------------------------------

def test_real_concurrency_module_is_clean():
    report = lint_paths([CONCURRENCY_SRC], all_rules())
    assert report.ok, report.render_text()


def test_r006_catches_deleted_split_lock_acquisition(tmp_path):
    """The mutation self-test: strip ``split_lock.acquire`` from the real
    ConcurrentTree and the lint must flag every split-capable call that
    now runs under a bare write latch."""
    source = CONCURRENCY_SRC.read_text()
    mutant = re.sub(r"^\s*self\.split_lock\.acquire\(self\.latches\)\n",
                    "", source, flags=re.M)
    assert mutant != source, "mutation site moved; update the self-test"
    path = tmp_path / "concurrency_mutant.py"
    path.write_text(mutant)
    report = lint_paths([path], [SplitLockOrderRule()])
    flagged = [v for v in report.violations if v.rule_id == "R006"]
    # both ConcurrentTree.insert and ConcurrentTree.delete lose the lock
    assert len(flagged) >= 2, report.render_text()


def test_r009_catches_deleted_finally(tmp_path):
    """Rewriting ConcurrentTree.lookup's try/finally into straight-line
    code must trip R009."""
    source = CONCURRENCY_SRC.read_text()
    mutant = source.replace(
        """        self.latches.acquire_read(TREE_LATCH_PAGE)
        try:
            return self.tree.lookup(value)
        finally:
            self.latches.release(TREE_LATCH_PAGE)""",
        """        self.latches.acquire_read(TREE_LATCH_PAGE)
        result = self.tree.lookup(value)
        self.extra_bookkeeping(value)
        self.latches.release(TREE_LATCH_PAGE)
        return result""")
    assert mutant != source, "mutation site moved; update the self-test"
    path = tmp_path / "concurrency_mutant.py"
    path.write_text(mutant)
    report = lint_paths([path], [LatchReleaseOnExceptionRule()])
    assert "R009" in [v.rule_id for v in report.violations], \
        report.render_text()
