"""Shutdown-ordering regressions for the serving front door.

The invariant (same as the pool's own shutdown tests, one layer up): a
session whose submission races ``Server.close`` gets a typed
:class:`ServerClosed`, **never** a hang behind the worker pool's
shutdown sentinel.  Owner threads are parked on gates so each test pins
its interleaving deterministically instead of hoping a sleep loses the
race.
"""

import threading

import pytest

from repro import TID
from repro.serve import ServerClosed, Server
from repro.shard import ShardedEngine

PAGE = 512


def tid_for(i):
    return TID(1, i % 100)


def make(**kwargs):
    group = ShardedEngine.create(4, page_size=PAGE, seed=19)
    tree = group.create_tree("hybrid", "ix", codec="uint32")
    server = Server(tree, **kwargs)
    return group, tree, server


def key_on_shard(tree, shard, start=0):
    k = start
    while tree.shard_of(k) != shard:
        k += 1
    return k


def test_buffered_request_fails_typed_when_close_wins():
    # the request is admitted but its drain is parked behind a gated
    # closure when close() lands: the closer must fail the buffered
    # future *before* joining the parked owner, or the waiter hangs
    group, tree, server = make()
    gate = threading.Event()
    server.pool.submit(0, lambda: gate.wait(10))
    k = key_on_shard(tree, 0)
    request = server.submit("insert", k, tid_for(k))
    closer = threading.Thread(target=server.close, name="closer")
    closer.start()
    # the future resolves while the owner thread is still parked —
    # proof the closer failed it instead of waiting on the drain
    assert request.future.wait(timeout=5), \
        "buffered request stranded by close()"
    assert isinstance(request.future.error(), ServerClosed)
    gate.set()
    closer.join(timeout=10)
    assert not closer.is_alive()
    assert all(not t.is_alive() for t in server.pool._threads)


def test_submissions_after_close_raise_everywhere():
    group, tree, server = make()
    session = server.session()
    server.close()
    server.close()      # idempotent
    with pytest.raises(ServerClosed):
        server.session()
    with pytest.raises(ServerClosed):
        session.submit("insert", 1, tid_for(1))
    with pytest.raises(ServerClosed):
        session.get(1)
    with pytest.raises(ServerClosed):
        server.range_scan()
    session._dirty.add(0)     # pretend an earlier write dirtied shard 0
    with pytest.raises(ServerClosed):
        session.commit()
    assert all(not t.is_alive() for t in server.pool._threads)


def test_pool_closed_between_admission_and_drain_scheduling():
    # the narrowest window: the queues still admit but the pool closes
    # before the drain can be scheduled — the abandon path must fail
    # the admitted future instead of leaving it buffered forever
    group, tree, server = make()
    server.pool.close()       # out from under the server
    k = key_on_shard(tree, 0)
    request = server.submit("insert", k, tid_for(k))
    assert request.future.wait(timeout=5), \
        "request stranded behind a closed pool"
    assert isinstance(request.future.error(), ServerClosed)
    assert server.queues.depth(0) == 0
    server.close()


def test_commit_racing_close_resolves_typed_or_acked():
    # a commit submitted just before close(): the stage's stop() flushes
    # pending commits through one final barrier, so the committer either
    # gets its window or a typed error — it must never hang
    group, tree, server = make(window_delay=0.05)
    session = server.session()
    session.insert(1, tid_for(1))
    outcome = {}

    def committer():
        try:
            outcome["window"] = session.commit()
        except ServerClosed as exc:
            outcome["error"] = exc

    t = threading.Thread(target=committer, name="committer")
    t.start()
    # land close() inside the aggregation window while the commit is
    # pending (submit is condition-guarded, so this interleaving is the
    # one the aggregation delay deliberately holds open)
    while server.commit_stage.pending_count() == 0 and t.is_alive():
        pass
    server.close()
    t.join(timeout=10)
    assert not t.is_alive(), "commit stranded by close()"
    assert ("window" in outcome) ^ ("error" in outcome)
    if "window" in outcome:
        assert outcome["window"] >= 1


def test_concurrent_clients_during_close_all_resolve():
    # a herd of clients submitting while another thread closes: every
    # call either succeeds or raises typed; nothing hangs
    group, tree, server = make()
    n_clients = 8
    stranded = []
    started = threading.Barrier(n_clients + 1)

    def client(cid):
        s = server.session()
        started.wait(timeout=10)
        for i in range(50):
            try:
                s.insert(1000 * (cid + 1) + i, tid_for(i))
                s.commit()
            except ServerClosed:
                return
            except Exception:  # lint: disable=R005
                return        # typed per-op failures are fine too

    threads = [threading.Thread(target=client, args=(cid,))
               for cid in range(n_clients)]
    for t in threads:
        t.start()
    started.wait(timeout=10)
    server.close()
    for t in threads:
        t.join(timeout=30)
        if t.is_alive():
            stranded.append(t.name)
    assert not stranded, f"client threads stranded: {stranded}"
    assert all(not t.is_alive() for t in server.pool._threads)
