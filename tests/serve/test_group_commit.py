"""Group-commit stage: window occupancy, ack/fail routing, lifecycle.

The deterministic tests drive :class:`GroupCommitStage` with
``autostart=False`` + :meth:`drain_once`, so exactly one barrier covers
exactly the commits the test staged — no timing dependence.  The
threaded test checks the live committer end-to-end through the server.
"""

import threading

import pytest

from repro import TID
from repro.obs import scoped_registry
from repro.serve import GroupCommitStage, Server, ServerClosed
from repro.serve.request import CommitRequest
from repro.shard import GroupSyncScheduler, ShardedEngine, ShardWorkerPool
from repro.storage import CrashOnNthSync

PAGE = 512


def tid_for(i):
    return TID(1 + (i >> 8), i & 0xFF)


def make(n=4, seed=17):
    group = ShardedEngine.create(n, page_size=PAGE, seed=seed)
    tree = group.create_tree("hybrid", "ix", codec="uint32")
    scheduler = GroupSyncScheduler(group)
    pool = ShardWorkerPool(tree, scheduler=scheduler)
    return group, tree, scheduler, pool


def dirty_shard(pool, shard, lo, tree):
    """Insert a handful of keys routed to *shard* via its owner."""
    keys = []
    k = lo
    while len(keys) < 4:
        if tree.shard_of(k) == shard:
            keys.append(k)
        k += 1
    pool.run_batch([("insert", k, tid_for(k)) for k in keys])


def test_one_barrier_acks_every_pending_commit():
    group, tree, scheduler, pool = make()
    with pool:
        stage = GroupCommitStage(group, scheduler, pool,
                                 autostart=False)
        dirty_shard(pool, 0, 100, tree)
        dirty_shard(pool, 1, 100, tree)
        commits = [CommitRequest(shards=frozenset({0})),
                   CommitRequest(shards=frozenset({1})),
                   CommitRequest(shards=frozenset({0, 1}))]
        for c in commits:
            stage.submit(c)
        assert stage.drain_once() == 3
        windows = {c.future.result(5) for c in commits}
        assert windows == {scheduler.window}
        assert scheduler.commit_windows == 1
        assert scheduler.commits_coalesced == 3
        assert scheduler.amortization == pytest.approx(3.0)


def test_occupancy_is_recorded_in_the_registry():
    with scoped_registry() as reg:
        group, tree, scheduler, pool = make()
        with pool:
            stage = GroupCommitStage(group, scheduler, pool,
                                     autostart=False)
            dirty_shard(pool, 0, 100, tree)
            for _ in range(4):
                stage.submit(CommitRequest(shards=frozenset({0})))
            stage.drain_once()
        snap = reg.snapshot()
        occupancy = snap["histograms"]["shard.group.window_occupancy"]
        assert occupancy["count"] == 1
        assert occupancy["sum"] == 4
        assert snap["counters"]["shard.group.commits_coalesced"] == 4
        assert snap["counters"]["serve.commit.acked"] == 4
        assert snap["counters"]["serve.commit.windows"] == 1


def test_commit_touching_a_crashed_shard_fails_typed():
    # two commits share the window; the barrier sync kills shard 0, so
    # the commit covering it fails with the shard named while the
    # sibling's commit still acks — crash isolation at the ack level
    group, tree, scheduler, pool = make()
    with pool:
        stage = GroupCommitStage(group, scheduler, pool,
                                 autostart=False)
        dirty_shard(pool, 0, 100, tree)
        dirty_shard(pool, 1, 100, tree)
        group.shard(0).crash_policy = CrashOnNthSync(1)
        doomed = CommitRequest(shards=frozenset({0}))
        safe = CommitRequest(shards=frozenset({1}))
        stage.submit(doomed)
        stage.submit(safe)
        stage.drain_once()
        assert safe.future.result(5) == scheduler.window
        error = doomed.future.error()
        assert error is not None and error.shards == [0]
        assert error.window == scheduler.window
        assert not error.retryable
        assert scheduler.crash_windows[0] == scheduler.window


def test_commit_to_an_already_dead_shard_fails_without_a_crash():
    group, tree, scheduler, pool = make()
    with pool:
        stage = GroupCommitStage(group, scheduler, pool,
                                 autostart=False)
        dirty_shard(pool, 0, 100, tree)
        group.shard(0).crash_policy = CrashOnNthSync(1)
        first = CommitRequest(shards=frozenset({0}))
        stage.submit(first)
        stage.drain_once()          # the crash happens here
        assert first.future.error() is not None
        retry = CommitRequest(shards=frozenset({0}))
        stage.submit(retry)
        stage.drain_once()          # shard 0 is dead, not re-crashing
        error = retry.future.error()
        assert error is not None and error.shards == [0]


def test_stop_flushes_pending_and_rejects_later_submissions():
    group, tree, scheduler, pool = make()
    with pool:
        stage = GroupCommitStage(group, scheduler, pool,
                                 autostart=False)
        dirty_shard(pool, 0, 100, tree)
        pending = CommitRequest(shards=frozenset({0}))
        stage.submit(pending)
        stage.stop()                # inline flush: no committer ran
        assert pending.future.result(5) >= 1
        with pytest.raises(ServerClosed):
            stage.submit(CommitRequest(shards=frozenset({0})))


def test_threaded_committers_share_windows():
    group = ShardedEngine.create(4, page_size=PAGE, seed=17)
    tree = group.create_tree("hybrid", "ix", codec="uint32")
    server = Server(tree, window_delay=0.01)
    n_clients = 8
    start = threading.Barrier(n_clients)
    errors = []

    def client(cid):
        try:
            s = server.session()
            base = 500 * (cid + 1)
            s.insert(base, tid_for(cid))
            s.insert(base + 1, tid_for(cid))
            start.wait(timeout=10)       # commit storm, all at once
            assert s.commit() >= 1
        except Exception as exc:  # lint: disable=R005
            errors.append(exc)

    with server:
        threads = [threading.Thread(target=client, args=(cid,))
                   for cid in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors
        scheduler = server.scheduler
        assert scheduler.commits_coalesced == n_clients
        # the aggregation window must have folded the storm into fewer
        # barriers than commits (usually just one or two)
        assert scheduler.commit_windows < n_clients
        assert scheduler.amortization > 1.0
