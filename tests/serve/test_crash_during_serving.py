"""Crash-during-serving campaign: acked commits survive recovery.

The serving layer's one hard promise is the ack: a commit that returned
is durable, full stop.  These tests crash a shard *while concurrent
clients are loading through the server*, then recover — stop-the-world
and admit-immediately both — and check that every key covered by an
acknowledged commit is present, the structures verify clean, and
unacked writes either applied atomically or vanished.
"""

import threading

from repro import TID
from repro.errors import ReproError
from repro.serve import ServeError, Server
from repro.shard import RecoveryOrchestrator, ShardedEngine
from repro.storage import CrashOnNthSync
from repro.tools.fsck import fsck_group

PAGE = 512
N_SHARDS = 4
BASE = 300
N_CLIENTS = 4
PER_CLIENT = 40
COMMIT_EVERY = 5


def tid_for(i):
    return TID(1 + (i >> 8), i & 0xFF)


def build(seed=23):
    group = ShardedEngine.create(N_SHARDS, page_size=PAGE, seed=seed)
    tree = group.create_tree("shadow", "ix", codec="uint32")
    for k in range(BASE):
        tree.insert(k, tid_for(k))
        if (k + 1) % 100 == 0:
            group.sync_all()
    group.sync_all()
    return group, tree


def run_serving_load(server):
    """Concurrent clients insert and commit until done or the server
    degrades.  Returns (acked_keys, attempted_keys): acked only counts
    keys whose insert future succeeded *and* whose commit returned."""
    acked = [set() for _ in range(N_CLIENTS)]
    attempted = [set() for _ in range(N_CLIENTS)]

    def client(cid):
        session = server.session()
        staged = []    # (key, request) since the last commit attempt

        def commit_staged():
            try:
                session.commit()
            except (ServeError, ReproError):
                session._dirty.clear()   # give up on the failed shards
                return
            acked[cid].update(
                k for k, r in staged if r.future.error() is None)

        for i in range(PER_CLIENT):
            k = BASE + 1000 * (cid + 1) + i
            try:
                request = session.submit("insert", k, tid_for(k))
            except (ServeError, ReproError):
                break
            attempted[cid].add(k)
            staged.append((k, request))
            if len(staged) >= COMMIT_EVERY:
                session.flush()
                commit_staged()
                staged = []
        if staged:
            session.flush()
            commit_staged()

    threads = [threading.Thread(target=client, args=(cid,),
                                name=f"client-{cid}")
               for cid in range(N_CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert all(not t.is_alive() for t in threads), \
        "a client thread hung during the crash campaign"
    return (set().union(*acked), set().union(*attempted))


def check_recovered_state(group2, acked, attempted):
    assert fsck_group(group2).errors == 0
    pairs = dict(group2.open_tree("ix").range_scan())
    seen = set(pairs)
    missing = acked - seen
    assert not missing, (
        f"{len(missing)} acked keys lost: {sorted(missing)[:10]}")
    # the synced preload is durable regardless of the campaign
    assert set(range(BASE)) <= seen
    # unacked writes apply-or-vanish: any surviving attempt carries
    # exactly the payload the client sent, never a torn value
    for k in (attempted & seen):
        assert pairs[k] == tid_for(k)


def test_acked_commits_survive_stop_the_world_recovery():
    group, tree = build()
    victim = tree.shard_of(BASE)
    # the victim dies at its 2nd sync after arming — mid-campaign,
    # while siblings keep serving
    group.shard(victim).crash_policy = CrashOnNthSync(2)
    server = Server(tree, window_delay=0.001)
    with server:
        acked, attempted = run_serving_load(server)
    assert victim in group.crashed_shards(), \
        "the campaign never reached the victim's crash point"
    assert acked, "no commit was acked before the crash"

    group2, report = RecoveryOrchestrator().recover(group, "ix")
    assert report.ok
    check_recovered_state(group2, acked, attempted)


def test_acked_commits_survive_admit_immediately_recovery():
    group, tree = build(seed=29)
    victim = tree.shard_of(BASE)
    group.shard(victim).crash_policy = CrashOnNthSync(2)
    server = Server(tree, window_delay=0.001)
    with server:
        acked, attempted = run_serving_load(server)
    assert victim in group.crashed_shards()
    assert acked

    orchestrator = RecoveryOrchestrator(admit_immediately=True)
    group2, report = orchestrator.recover(group, "ix")
    assert report.ok
    heal = report.heal
    assert heal is not None and not heal.done

    # serve during the heal: a fresh server over the healing handle
    # (its pool picks up the attached queue) answers for acked keys
    # while repairs drain in the background
    with Server(heal.tree) as healing_server:
        session = healing_server.session()
        probe = sorted(acked)[:20]
        for k in probe:
            assert session.get(k) == tid_for(k), \
                f"acked key {k} unreadable during heal"
        healing_server.run_heal()
        assert heal.healed
    check_recovered_state(group2, acked, attempted)
