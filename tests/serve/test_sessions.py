"""Session semantics through the serving front door.

Every operation here crosses a thread boundary — client thread to shard
owner thread — so these tests are the contract that the dispatch
pipeline preserves single-client semantics: per-key errors land on the
right futures, FIFO order per shard holds, and coalesced batches are
indistinguishable from one-at-a-time execution.
"""

import threading

import pytest

from repro import TID
from repro.errors import DuplicateKeyError, KeyNotFoundError, ReproError
from repro.obs import scoped_registry
from repro.serve import Server
from repro.shard import ShardedEngine

PAGE = 512


def tid_for(i):
    return TID(1 + (i >> 8), i & 0xFF)


def make(n=4, seed=11, **kwargs):
    group = ShardedEngine.create(n, page_size=PAGE, seed=seed)
    tree = group.create_tree("hybrid", "ix", codec="uint32")
    server = Server(tree, **kwargs)
    return group, tree, server


def keys_on_shard(tree, shard, count, start=0):
    out = []
    k = start
    while len(out) < count:
        if tree.shard_of(k) == shard:
            out.append(k)
        k += 1
    return out


def test_basic_ops_round_trip():
    group, tree, server = make()
    with server:
        s = server.session()
        s.insert(7, tid_for(7))
        assert s.get(7) == tid_for(7)
        assert s.get(8) is None
        s.delete(7)
        assert s.get(7) is None


def test_update_is_a_server_side_upsert():
    group, tree, server = make()
    with server:
        s = server.session()
        assert s.update(42, tid_for(1)) is False   # inserted fresh
        assert s.get(42) == tid_for(1)
        assert s.update(42, tid_for(2)) is True    # replaced
        assert s.get(42) == tid_for(2)


def test_duplicate_insert_fails_only_its_own_future():
    group, tree, server = make()
    with server:
        s = server.session()
        s.insert(3, tid_for(3))
        with pytest.raises(DuplicateKeyError):
            s.insert(3, tid_for(99))
        # the shard survives the per-request failure
        s.insert(4, tid_for(4))
        assert s.get(3) == tid_for(3)


def test_delete_missing_key_is_typed():
    group, tree, server = make()
    with server:
        s = server.session()
        with pytest.raises(KeyNotFoundError):
            s.delete(12345)


def test_unknown_op_rejected_synchronously():
    group, tree, server = make()
    with server:
        with pytest.raises(ReproError):
            server.submit("frobnicate", 1)


def test_range_merges_shards_in_key_order():
    group, tree, server = make()
    with server:
        s = server.session()
        keys = [97, 3, 512, 44, 260, 9, 1000]
        for k in keys:
            s.insert(k, tid_for(k))
        rows = s.range()
        assert [k for k, _ in rows] == sorted(keys)
        assert dict(rows) == {k: tid_for(k) for k in keys}


def test_commit_returns_window_and_resets_dirty():
    group, tree, server = make()
    with server:
        s = server.session()
        s.insert(1, tid_for(1))
        assert s.dirty_shards() == {tree.shard_of(1)}
        window = s.commit()
        assert window >= 1
        assert s.dirty_shards() == frozenset()
        # a commit with nothing dirty is a no-op, not a barrier
        assert s.commit() == 0
        # after the barrier the shard's frames are clean
        assert group.shard(tree.shard_of(1)).dirty_page_count() == 0


def test_pipelined_writes_coalesce_into_batched_fast_paths():
    # park shard 0's owner so concurrent inserts pile into its buffer,
    # then release: the drain takes them as one chunk and coalesce()
    # must route the run through insert_many (counted per request)
    with scoped_registry() as reg:
        group, tree, server = make()
        with server:
            s = server.session()
            gate = threading.Event()
            done, _ = server.pool.submit(0, lambda: gate.wait(10))
            keys = keys_on_shard(tree, 0, 8)
            requests = [s.submit("insert", k, tid_for(k)) for k in keys]
            gate.set()
            for r in requests:
                assert r.future.result() is None
            assert all(s.get(k) == tid_for(k) for k in keys)
        counters = reg.snapshot()["counters"]
        assert counters.get("serve.coalesced_ops", 0) >= len(keys)


def test_coalesced_run_pre_probes_duplicates():
    # a duplicate buried inside a parked batch must fail alone; the
    # rest of the run still applies through the batched path
    group, tree, server = make()
    with server:
        s = server.session()
        keys = keys_on_shard(tree, 0, 6)
        s.insert(keys[2], tid_for(keys[2]))   # pre-existing key
        gate = threading.Event()
        server.pool.submit(0, lambda: gate.wait(10))
        requests = [s.submit("insert", k, tid_for(k)) for k in keys]
        gate.set()
        for i, r in enumerate(requests):
            if i == 2:
                with pytest.raises(DuplicateKeyError):
                    r.future.result()
            else:
                assert r.future.result() is None
        assert all(s.get(k) == tid_for(k) for k in keys)


def test_per_shard_fifo_order_is_preserved():
    # insert-then-delete-then-insert of the same key, pipelined while
    # the owner is parked: the final state proves FIFO execution
    group, tree, server = make()
    with server:
        s = server.session()
        k = keys_on_shard(tree, 0, 1)[0]
        gate = threading.Event()
        server.pool.submit(0, lambda: gate.wait(10))
        s.submit("insert", k, tid_for(1))
        s.submit("delete", k)
        s.submit("insert", k, tid_for(2))
        gate.set()
        s.flush()
        assert s.get(k) == tid_for(2)


def test_per_commit_mode_syncs_each_dirty_shard():
    group, tree, server = make(commit_mode="per_commit")
    with server:
        s = server.session()
        for k in (1, 2, 3, 4):
            s.insert(k, tid_for(k))
        dirty = {tree.shard_of(k) for k in (1, 2, 3, 4)}
        assert s.commit() == 0    # per-commit mode has no windows
        for shard in dirty:
            assert group.shard(shard).dirty_page_count() == 0


def test_concurrent_clients_share_one_server():
    group, tree, server = make()
    n_clients, per_client = 6, 30
    errors = []

    def client(cid):
        try:
            s = server.session()
            base = 1000 * (cid + 1)
            for i in range(per_client):
                s.insert(base + i, tid_for(i))
            s.commit()
            for i in range(per_client):
                assert s.get(base + i) == tid_for(i)
        except Exception as exc:  # lint: disable=R005
            errors.append(exc)

    with server:
        threads = [threading.Thread(target=client, args=(cid,))
                   for cid in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors
        rows = server.range_scan()
        assert len(rows) == n_clients * per_client
