"""Exhaustive crash-subset sweep over one group-commit window.

The group-commit ack must be honest against *any* torn barrier sync: if
the victim shard persists only a subset of the pages its window sync
wrote, the commit riding that window fails typed, every previously
acked commit still survives recovery, and the torn window's writes
apply-or-vanish.  A probe run records the victim's sync batches through
the real serving path, then the sweep replays the identical scenario
once per persisted subset (the serving script is single-session and
synchronous, so the rebuilt runs are bit-for-bit deterministic).
"""

import pytest

from repro import TID
from repro.serve import CommitFailed, Server
from repro.shard import RecoveryOrchestrator, ShardedEngine
from repro.storage import CrashOnNthSync, RecordingPolicy, SubsetEnumerator
from repro.tools.fsck import fsck_group

PAGE = 512
PRELOAD = 80
VICTIM = 0
N_SHARDS = 2


def tid_for(i):
    return TID(1 + (i >> 8), i & 0xFF)


def build(policy=None, seed=31):
    """Deterministically rebuild the group; *policy* arms the victim
    before any sync so probe and sweep count syncs identically."""
    group = ShardedEngine.create(N_SHARDS, page_size=PAGE, seed=seed)
    tree = group.create_tree("shadow", "ix", codec="uint32")
    if policy is not None:
        group.shard(VICTIM).crash_policy = policy
    for k in range(PRELOAD):
        tree.insert(k, tid_for(k))
    group.sync_all()
    return group, tree


def victim_keys(tree, lo, count):
    out = []
    k = lo
    while len(out) < count:
        if tree.shard_of(k) == VICTIM:
            out.append(k)
        k += 1
    return out


def run_script(group, tree):
    """The serving script under test: two commits, both dirtying only
    the victim shard.  Single synchronous session + zero aggregation
    delay = one deterministic sync per commit.  Returns
    (first_batch, second_batch, first_window, second_commit_error)."""
    first = victim_keys(tree, 200, 6)
    second = victim_keys(tree, 400, 6)
    error = None
    with Server(tree, window_delay=0.0) as server:
        session = server.session()
        for k in first:
            session.insert(k, tid_for(k))
        first_window = session.commit()
        for k in second:
            session.insert(k, tid_for(k))
        try:
            session.commit()
        except CommitFailed as exc:
            error = exc
    return first, second, first_window, error


def test_every_subset_of_a_commit_window_sync_keeps_the_acks():
    # probe: record the victim's sync batches through the real path.
    # Sync ordinals on the victim: preload sync_all, commit 1's
    # barrier, commit 2's barrier — the last recorded batch is the
    # window under test.
    recorder = RecordingPolicy()
    group, tree = build(policy=recorder)
    first, second, first_window, error = run_script(group, tree)
    assert error is None, "the probe run must not crash"
    assert first_window >= 1
    n_syncs = len(recorder.batches)
    assert n_syncs >= 3, f"expected preload + 2 barriers, saw {n_syncs}"
    batch = recorder.batches[-1]
    assert len(batch) >= 2, f"degenerate window sync batch {batch}"

    subsets = list(SubsetEnumerator(batch, max_exhaustive=6,
                                    sample=24).subsets())
    assert subsets
    for subset in subsets:
        if len(subset) == len(batch):
            continue    # the full batch persisting is just a clean sync
        group, tree = build(
            policy=CrashOnNthSync(n_syncs, keep=list(subset)))
        first, second, first_window, error = run_script(group, tree)

        # the torn barrier fails the commit typed, naming the victim
        # and the window that could not be proven durable
        assert error is not None, \
            f"subset {sorted(subset)}: torn sync was acked"
        assert error.shards == [VICTIM]
        assert error.window == first_window + 1
        assert VICTIM in group.crashed_shards()

        # recovery: the acked window survives from any persisted subset
        group2, report = RecoveryOrchestrator().recover(group, "ix")
        assert report.ok, \
            f"subset {sorted(subset)}: {report.failed_shards()}"
        assert fsck_group(group2).errors == 0
        pairs = dict(group2.open_tree("ix").range_scan())
        durable = set(range(PRELOAD)) | set(first)
        missing = durable - set(pairs)
        assert not missing, (
            f"subset {sorted(subset)}: acked keys lost {sorted(missing)}")
        # the unacked window's writes apply-or-vanish, never tear
        for k in second:
            assert pairs.get(k, tid_for(k)) == tid_for(k)


def test_commit_failed_window_is_retryable_after_recovery():
    # the CommitFailed contract: recover the group, retry the writes,
    # and the second attempt acks normally
    group, tree = build(policy=CrashOnNthSync(3))
    first, second, first_window, error = run_script(group, tree)
    assert error is not None and error.shards == [VICTIM]

    group2, report = RecoveryOrchestrator().recover(group, "ix")
    assert report.ok
    tree2 = group2.open_tree("ix")
    with Server(tree2, window_delay=0.0) as server:
        session = server.session()
        for k in second:
            if session.get(k) is None:     # vanished with the tear
                session.insert(k, tid_for(k))
        assert session.commit() >= 1 or not session.dirty_shards()
    pairs = dict(group2.open_tree("ix").range_scan())
    for k in second:
        assert pairs[k] == tid_for(k)
