"""Admission control: bounded queues reject with a typed, retryable
error instead of buffering without limit.

The owner thread is parked on a gate so the test controls exactly how
much the target shard's buffer holds — no sleeps, no racing the drain.
"""

import threading

import pytest

from repro import TID
from repro.obs import scoped_registry
from repro.serve import Overloaded, ServeError, Server
from repro.shard import ShardedEngine

PAGE = 512
DEPTH = 4


def tid_for(i):
    return TID(1, i % 100)


def make(**kwargs):
    group = ShardedEngine.create(4, page_size=PAGE, seed=13)
    tree = group.create_tree("hybrid", "ix", codec="uint32")
    server = Server(tree, max_queue_depth=DEPTH, **kwargs)
    return group, tree, server


def keys_on_shard(tree, shard, count, start=0):
    out = []
    k = start
    while len(out) < count:
        if tree.shard_of(k) == shard:
            out.append(k)
        k += 1
    return out


def test_overload_is_typed_retryable_and_recoverable():
    group, tree, server = make()
    with server:
        s = server.session()
        keys = keys_on_shard(tree, 0, DEPTH + 1)
        gate = threading.Event()
        server.pool.submit(0, lambda: gate.wait(10))
        admitted = [s.submit("insert", k, tid_for(k))
                    for k in keys[:DEPTH]]
        assert server.queues.depth(0) == DEPTH
        with pytest.raises(Overloaded) as info:
            s.submit("insert", keys[DEPTH], tid_for(keys[DEPTH]))
        error = info.value
        assert isinstance(error, ServeError)
        assert error.retryable
        assert error.shard == 0
        assert error.depth == DEPTH
        # the rejection consumed no queue space
        assert server.queues.depth(0) == DEPTH
        gate.set()
        for r in admitted:
            assert r.future.result() is None
        # the retry the error asked for now succeeds
        s.insert(keys[DEPTH], tid_for(keys[DEPTH]))
        assert s.get(keys[DEPTH]) == tid_for(keys[DEPTH])


def test_overload_increments_the_rejection_counter():
    with scoped_registry() as reg:
        group, tree, server = make()
        with server:
            s = server.session()
            keys = keys_on_shard(tree, 0, DEPTH + 2)
            gate = threading.Event()
            server.pool.submit(0, lambda: gate.wait(10))
            for k in keys[:DEPTH]:
                s.submit("insert", k, tid_for(k))
            for k in keys[DEPTH:]:
                with pytest.raises(Overloaded):
                    s.submit("insert", k, tid_for(k))
            gate.set()
            s.flush()
        assert reg.snapshot()["counters"]["serve.overloaded"] == 2


def test_one_overloaded_shard_does_not_block_its_siblings():
    group, tree, server = make()
    with server:
        s = server.session()
        gate = threading.Event()
        server.pool.submit(0, lambda: gate.wait(10))
        for k in keys_on_shard(tree, 0, DEPTH):
            s.submit("insert", k, tid_for(k))
        with pytest.raises(Overloaded):
            s.submit("insert",
                     keys_on_shard(tree, 0, 1, start=10_000)[0],
                     tid_for(0))
        # shard 1 serves synchronously while shard 0 is saturated
        sibling_keys = keys_on_shard(tree, 1, 3)
        for k in sibling_keys:
            s.insert(k, tid_for(k))
            assert s.get(k) == tid_for(k)
        gate.set()
        s.flush()
