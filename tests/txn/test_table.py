"""End-to-end: heap + index + visibility — the paper's full guarantee.

"To make the index recoverable without log processing, the DBMS must
ensure that currently valid keys are visible and invalid keys are
invisible to index lookup operations."
"""

import pytest

from repro import (
    CrashError,
    KeyNotFoundError,
    RandomSubsetCrash,
    StorageEngine,
    TREE_CLASSES,
)
from repro.txn import IndexedTable, TransactionManager, tuple_visible


@pytest.fixture(params=["shadow", "reorg", "hybrid"])
def setup(request):
    engine = StorageEngine.create(page_size=512, seed=4)
    txns = TransactionManager(engine)
    table = IndexedTable.create(engine, txns, "t",
                                index_kind=request.param)
    return engine, txns, table


def test_committed_rows_visible(setup):
    engine, txns, table = setup
    with txns.begin() as txn:
        for i in range(40):
            table.insert(txn, i, f"row-{i}".encode())
    assert table.get(7) == b"row-7"
    assert [k for k, _ in table.scan()] == list(range(40))


def test_uncommitted_rows_invisible_to_others(setup):
    engine, txns, table = setup
    txn = txns.begin()
    table.insert(txn, 1, b"pending")
    assert table.get(1) is None                  # other readers: invisible
    assert table.get(1, xid=txn.xid) == b"pending"  # own reads: visible
    txn.commit()
    assert table.get(1) == b"pending"


def test_aborted_rows_stay_invisible(setup):
    engine, txns, table = setup
    txn = txns.begin()
    table.insert(txn, 1, b"doomed")
    txn.abort()
    assert table.get(1) is None
    assert list(table.scan()) == []


def test_delete_via_visibility_not_index(setup):
    """Transactional delete stamps xmax; the index key remains but the
    row disappears from reads."""
    engine, txns, table = setup
    with txns.begin() as txn:
        table.insert(txn, 1, b"v")
    with txns.begin() as txn:
        table.delete(txn, 1)
    assert table.get(1) is None
    # the key is still physically present in the index
    assert table.index.lookup(1) is not None


def test_delete_of_missing_key_raises(setup):
    engine, txns, table = setup
    txn = txns.begin()
    with pytest.raises(KeyNotFoundError):
        table.delete(txn, 404)
    txn.abort()


def test_crash_mid_commit_end_to_end(setup):
    engine, txns, table = setup
    with txns.begin() as txn:
        for i in range(60):
            table.insert(txn, i, f"c{i}".encode())
    victim = txns.begin()
    for i in range(60, 120):
        table.insert(victim, i, f"u{i}".encode())
    engine.crash_policy = RandomSubsetCrash(p=1.0, seed=8)
    with pytest.raises(CrashError):
        victim.commit()

    engine2 = StorageEngine.reopen_after_crash(engine)
    txns2 = TransactionManager(engine2)
    table2 = IndexedTable.open(engine2, txns2, "t")
    for i in range(60):
        assert table2.get(i) == f"c{i}".encode(), i
    for i in range(60, 120):
        assert table2.get(i) is None, i
    rows = list(table2.scan())
    assert [k for k, _ in rows] == list(range(60))


def test_dangling_index_keys_detected_and_ignored(setup):
    """An index key pointing at a heap slot that never materialized is
    exactly the 'invalid key' the storage system detects and ignores."""
    engine, txns, table = setup
    from repro.core.keys import TID
    with txns.begin() as txn:
        table.insert(txn, 1, b"real")
    table.index.insert(999, TID(80, 3))        # points into the void
    engine.sync()
    assert table.get(999) is None
    assert [k for k, _ in table.scan()] == [1]


def test_update_visibility(setup):
    engine, txns, table = setup
    with txns.begin() as txn:
        table.insert(txn, 1, b"v1")
    with txns.begin() as txn:
        table.delete(txn, 1)
        table.insert(txn, 1 + 1000, b"v2")   # new version under new key
    assert table.get(1) is None
    assert table.get(1001) == b"v2"


def test_tuple_visible_unit():
    engine = StorageEngine.create(page_size=512, seed=4)
    txns = TransactionManager(engine)
    from repro.txn.heap import HeapTuple
    from repro.core.keys import TID
    committed = txns.begin()
    committed.commit()
    live = HeapTuple(TID(1, 0), committed.xid, 0, b"x")
    assert tuple_visible(live, txns)
    assert not tuple_visible(None, txns)
    pending = HeapTuple(TID(1, 1), 999, 0, b"x")
    assert not tuple_visible(pending, txns)
    assert tuple_visible(pending, txns, current_xid=999)
    deleted = HeapTuple(TID(1, 2), committed.xid, committed.xid, b"x")
    assert not tuple_visible(deleted, txns)
