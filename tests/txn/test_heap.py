"""No-overwrite heap relations."""

import pytest

from repro import StorageEngine
from repro.core.keys import TID
from repro.errors import PageFullError, TreeError
from repro.txn import HeapRelation


@pytest.fixture
def heap():
    engine = StorageEngine.create(page_size=512, seed=1)
    return HeapRelation.create(engine, "h")


def test_insert_fetch_roundtrip(heap):
    tid = heap.insert(b"hello", xid=5)
    tup = heap.fetch(tid)
    assert tup.payload == b"hello"
    assert tup.xmin == 5
    assert tup.xmax == 0
    assert not tup.deleted


def test_tids_are_stable_and_distinct(heap):
    tids = [heap.insert(f"row-{i}".encode(), xid=1) for i in range(50)]
    assert len(set(tids)) == 50
    for i, tid in enumerate(tids):
        assert heap.fetch(tid).payload == f"row-{i}".encode()


def test_delete_stamps_xmax_in_place(heap):
    tid = heap.insert(b"doomed", xid=1)
    heap.delete(tid, xid=2)
    tup = heap.fetch(tid)
    assert tup.deleted
    assert tup.xmax == 2
    assert tup.payload == b"doomed"     # the bytes are never overwritten


def test_double_delete_rejected(heap):
    tid = heap.insert(b"x", xid=1)
    heap.delete(tid, xid=2)
    with pytest.raises(TreeError):
        heap.delete(tid, xid=3)


def test_update_is_delete_plus_insert(heap):
    tid = heap.insert(b"v1", xid=1)
    tid2 = heap.update(tid, b"v2", xid=2)
    assert tid2 != tid
    old = heap.fetch(tid)
    assert old.deleted and old.payload == b"v1"
    assert heap.fetch(tid2).payload == b"v2"


def test_fetch_dangling_tid_returns_none(heap):
    assert heap.fetch(TID(99, 0)) is None
    tid = heap.insert(b"x", xid=1)
    assert heap.fetch(TID(tid.page_no, tid.line + 7)) is None


def test_scan_yields_every_version(heap):
    tid = heap.insert(b"v1", xid=1)
    heap.update(tid, b"v2", xid=2)
    for i in range(30):
        heap.insert(f"r{i}".encode(), xid=3)
    versions = list(heap.scan())
    assert len(versions) == 32
    payloads = {t.payload for t in versions}
    assert b"v1" in payloads and b"v2" in payloads


def test_pages_fill_and_chain(heap):
    for i in range(200):
        heap.insert(b"x" * 20, xid=1)
    assert heap.file.n_pages > 2


def test_oversized_tuple_rejected(heap):
    with pytest.raises(PageFullError):
        heap.insert(b"x" * 600, xid=1)


def test_durability_through_reopen(heap):
    engine = heap.engine
    tid = heap.insert(b"persist-me", xid=1)
    engine.sync()
    engine.shutdown()
    from repro import StorageEngine
    engine2 = StorageEngine.reopen(engine)
    heap2 = HeapRelation.open(engine2, "h")
    assert heap2.fetch(tid).payload == b"persist-me"
