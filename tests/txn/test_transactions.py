"""Transaction manager: xid assignment, the sync-then-flip commit point,
and the xid status log."""

import pytest

from repro import CrashError, CrashOnNthSync, StorageEngine
from repro.errors import TransactionError
from repro.txn import (
    ABORTED,
    COMMITTED,
    IN_PROGRESS,
    TransactionManager,
)
from repro.txn.xidlog import XidLog


@pytest.fixture
def engine():
    return StorageEngine.create(page_size=512, seed=2)


@pytest.fixture
def txns(engine):
    return TransactionManager(engine)


def test_xids_monotonic(txns):
    xids = [txns.begin().xid for _ in range(10)]
    assert xids == sorted(xids)
    assert len(set(xids)) == 10


def test_commit_flips_status(txns):
    txn = txns.begin()
    assert not txns.is_committed(txn.xid)
    txn.commit()
    assert txns.is_committed(txn.xid)
    assert txn.state == "committed"


def test_abort_recorded(txns):
    txn = txns.begin()
    txn.abort()
    assert not txns.is_committed(txn.xid)
    assert txns.log.get_state(txn.xid) == ABORTED


def test_double_commit_rejected(txns):
    txn = txns.begin()
    txn.commit()
    with pytest.raises(TransactionError):
        txn.commit()
    with pytest.raises(TransactionError):
        txn.abort()


def test_context_manager_commits_or_aborts(txns):
    with txns.begin() as txn:
        pass
    assert txn.state == "committed"
    with pytest.raises(ValueError):
        with txns.begin() as txn2:
            raise ValueError("boom")
    assert txn2.state == "aborted"


def test_crash_during_commit_sync_leaves_uncommitted(engine, txns):
    txn = txns.begin()
    # dirty something so the sync has work to do
    file = engine.create_file("d")
    page = file.allocate()
    with file.pinned(page) as buf:
        file.mark_dirty(buf)
    engine.crash_policy = CrashOnNthSync(1, keep=0)
    with pytest.raises(CrashError):
        txn.commit()
    engine2 = StorageEngine.reopen_after_crash(engine)
    txns2 = TransactionManager(engine2)
    # the commit bit never flipped: presumed abort
    assert not txns2.is_committed(txn.xid)


def test_xids_never_reused_across_crash(engine, txns):
    used = [txns.begin().xid for _ in range(5)]
    engine.dead = True
    engine2 = StorageEngine.reopen_after_crash(engine)
    txns2 = TransactionManager(engine2)
    fresh = txns2.begin().xid
    assert fresh > max(used)


def test_status_survives_restart(engine, txns):
    committed = txns.begin()
    committed.commit()
    aborted = txns.begin()
    aborted.abort()
    engine.shutdown()
    engine2 = StorageEngine.reopen(engine)
    txns2 = TransactionManager(engine2)
    assert txns2.is_committed(committed.xid)
    assert not txns2.is_committed(aborted.xid)


def test_xidlog_two_bit_packing(engine):
    file = engine.create_file("xl")
    log = XidLog(file)
    for xid, state in ((1, COMMITTED), (2, ABORTED), (3, IN_PROGRESS),
                       (4, COMMITTED), (5, COMMITTED)):
        log.set_state(xid, state)
    assert log.get_state(1) == COMMITTED
    assert log.get_state(2) == ABORTED
    assert log.get_state(3) == IN_PROGRESS
    assert log.get_state(4) == COMMITTED
    assert log.is_committed(5)
    assert not log.is_committed(6)


def test_xidlog_spans_pages(engine):
    file = engine.create_file("xl")
    log = XidLog(file)
    far = 512 * 4 * 3 + 17   # well into the third status page
    log.set_state(far, COMMITTED)
    assert log.is_committed(far)
    assert not log.is_committed(far - 1)


def test_xidlog_rejects_bad_values(engine):
    file = engine.create_file("xl")
    log = XidLog(file)
    with pytest.raises(TransactionError):
        log.get_state(0)
    with pytest.raises(TransactionError):
        log.set_state(1, 7)
