"""Shared fixtures for the test suite.

Most tree tests are parametrized over all four index kinds via the
``tree_kind`` fixture; crash tests build engines with small pages so a few
hundred keys produce multi-level trees.
"""

from __future__ import annotations

import os

import pytest

from repro import TREE_CLASSES, StorageEngine, TID


@pytest.fixture(scope="session", autouse=True)
def _sanitizer():
    """Run the whole suite under the runtime sanitizer when
    ``REPRO_SANITIZE=1`` — every engine built by any test then checks pin
    balance, mutated-but-clean frames, and premature backup reclaims; the
    race checker watches lock order and the latch protocol's locksets."""
    if os.environ.get("REPRO_SANITIZE") != "1":
        yield
        return
    from repro.analysis import sanitizer
    from repro.analysis.races import runtime as races_runtime
    sanitizer.install()
    races_runtime.install()
    try:
        yield
    finally:
        races_runtime.uninstall()
        sanitizer.uninstall()

SMALL_PAGE = 512
ALL_KINDS = ("normal", "shadow", "reorg", "hybrid")
RECOVERABLE_KINDS = ("shadow", "reorg", "hybrid")


@pytest.fixture
def engine():
    return StorageEngine.create(page_size=SMALL_PAGE, seed=1234)


@pytest.fixture(params=ALL_KINDS)
def tree_kind(request):
    return request.param


@pytest.fixture(params=RECOVERABLE_KINDS)
def recoverable_kind(request):
    return request.param


@pytest.fixture
def tree(engine, tree_kind):
    return TREE_CLASSES[tree_kind].create(engine, "ix", codec="uint32")


@pytest.fixture
def recoverable_tree(engine, recoverable_kind):
    return TREE_CLASSES[recoverable_kind].create(engine, "ix",
                                                 codec="uint32")


def tid_for(i: int) -> TID:
    """Deterministic synthetic TID for key *i*."""
    return TID(1 + (i >> 8), i & 0xFF)


def fill_tree(tree, keys, *, sync_every: int = 64):
    """Insert *keys* with periodic syncs; returns the key list."""
    keys = list(keys)
    for count, key in enumerate(keys):
        tree.insert(key, tid_for(key if isinstance(key, int) else count))
        if (count + 1) % sync_every == 0:
            tree.engine.sync()
    tree.engine.sync()
    return keys
