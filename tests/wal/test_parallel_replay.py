"""Partitioned WAL replay: redo test, partitioning, and the
serial/parallel equivalence property.

The load-bearing guarantee is that concurrency changes *nothing* about
the recovered state: replaying partitions on the shard owner threads
(in any interleaving, with any key-range sub-partitioning) must yield a
tree state byte-identical to the serial replay — same full range scan,
clean fsck — because partitions share no keys and per-key LSN order
survives the key-range split.  The sweep runs that equivalence over
seeds and shard counts.
"""

import pytest

from repro import TID
from repro.bench.logvolume import build_wal_group
from repro.shard import RecoveryOrchestrator, ShardedEngine
from repro.tools.fsck import fsck_group
from repro.wal import (
    GroupLogicalLoggingTree,
    LogRecord,
    RecordKind,
    covered_by_mark,
    key_range_bounds,
    partition_records,
    replay_group,
    subpart_of,
)

PAGE = 512


def tid_for(i):
    return TID(1 + (i >> 8), i & 0xFF)


# ----------------------------------------------------------------------
# the redo test
# ----------------------------------------------------------------------

def _rec(lsn, token):
    return LogRecord(lsn, 1, RecordKind.OP_INSERT, b"", shard=0,
                     token=token)


def _mark(lsn, token):
    return LogRecord(lsn, 0, RecordKind.SYNC_MARK, b"", shard=0,
                     token=token)


def test_redo_test_elides_strictly_older_sync_windows():
    assert covered_by_mark(_rec(5, token=3), _mark(10, token=4))


def test_redo_test_uses_lsn_within_the_marks_own_window():
    # the sync counter only advances on a split, so one token window can
    # span several syncs: records before the mark are covered, records
    # after it are not
    mark = _mark(10, token=4)
    assert covered_by_mark(_rec(9, token=4), mark)
    assert not covered_by_mark(_rec(11, token=4), mark)


def test_redo_test_replays_newer_windows_and_unmarked_shards():
    assert not covered_by_mark(_rec(5, token=9), _mark(10, token=4))
    assert not covered_by_mark(_rec(5, token=3), None)


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------

def test_subpart_is_key_stable_contiguous_and_in_range():
    records = [LogRecord(lsn + 1, 1, RecordKind.OP_INSERT,
                         len(key).to_bytes(2, "little") + key)
               for lsn, key in enumerate(
                   i.to_bytes(4, "big") for i in range(0, 4000, 7))]
    for subparts in (2, 3, 8):
        bounds = key_range_bounds(records, subparts)
        assert bounds is not None
        parts = []
        for i in range(0, 4000, 7):
            key = i.to_bytes(4, "big")
            part = subpart_of(key, subparts, bounds)
            assert 0 <= part < subparts
            assert part == subpart_of(key, subparts, bounds)
            parts.append(part)
        # contiguous ranges: ascending keys never go back to an earlier
        # sub-range, and every range is populated
        assert parts == sorted(parts)
        assert set(parts) == set(range(subparts))
    assert key_range_bounds(records, 1) is None
    assert subpart_of(None, 4, [100]) == 0
    assert subpart_of(b"\x00\x00\x00\x01", 4, None) == 0


def test_partition_plan_covers_every_op_record_exactly_once():
    group, wal, _committed, _tail = build_wal_group(
        3, committed_keys=120, tail_keys=40, page_size=PAGE, seed=7)
    plan = partition_records(wal.log, [0, 1, 2], subparts=3)
    planned = [r.lsn for shard in plan for sub in plan[shard]
               for r in sub]
    expected = [r.lsn for shard in (0, 1, 2)
                for r in wal.log.records_for(shard)]
    assert sorted(planned) == sorted(expected)
    for shard, subs in plan.items():
        for sub in subs:
            assert [r.lsn for r in sub] == sorted(r.lsn for r in sub)
            for r in sub:
                assert r.shard == shard


# ----------------------------------------------------------------------
# serial/parallel equivalence (the property)
# ----------------------------------------------------------------------

def _recover(mode, subparts, *, n_shards, seed, physical=False):
    """Build the deterministic crashed group and recover it under one
    replay configuration; returns (group, stats, scan, committed, tail).
    """
    group, wal, committed, tail = build_wal_group(
        n_shards, committed_keys=180, tail_keys=60, page_size=PAGE,
        seed=seed, physical=physical)
    reopened = ShardedEngine.reopen(group)
    tree = reopened.open_tree("ix")
    stats = replay_group(wal.log, tree, parallel=(mode == "parallel"),
                         physical=physical, subparts=subparts)
    assert stats.ok, stats.errors()
    scan = list(tree.range_scan())
    return reopened, stats, scan, committed, tail


@pytest.mark.parametrize("seed", [3, 11])
@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_parallel_replay_equals_serial_replay(seed, n_shards):
    ref_group, ref_stats, ref_scan, committed, tail = _recover(
        "serial", 1, n_shards=n_shards, seed=seed)
    assert fsck_group(ref_group).errors == 0
    values = {v for v, _ in ref_scan}
    assert set(committed) <= values and set(tail) <= values

    for subparts in (1, 3):
        group, stats, scan, _, _ = _recover(
            "parallel", subparts, n_shards=n_shards, seed=seed)
        assert scan == ref_scan, (
            f"parallel(subparts={subparts}) diverged from serial at "
            f"{n_shards} shards, seed {seed}")
        assert fsck_group(group).errors == 0
        # same work was elided and applied, just concurrently
        assert stats.applied == ref_stats.applied
        assert stats.elided == ref_stats.elided
        assert stats.elided > 0


def test_parallel_physical_replay_equals_serial_physical():
    ref_group, _stats, ref_scan, committed, tail = _recover(
        "serial", 1, n_shards=3, seed=5, physical=True)
    assert fsck_group(ref_group).errors == 0
    group, stats, scan, _, _ = _recover(
        "parallel", 2, n_shards=3, seed=5, physical=True)
    assert scan == ref_scan
    assert fsck_group(group).errors == 0
    # no per-page LSN to test against: physical redo never elides, it
    # re-verifies (idempotent skips) and pays a touch per split record
    assert stats.elided == 0
    assert stats.out_of_order > 0
    assert stats.touched > 0


def test_uncommitted_tail_is_skipped():
    group = ShardedEngine.create(2, page_size=PAGE, seed=9)
    wal = GroupLogicalLoggingTree.create(group, "ix", kind="shadow")
    wal.current_xid = 1
    for i in range(80):
        wal.insert(i, tid_for(i))
    assert wal.commit() == []
    wal.current_xid = 2          # never commits: a redo loser
    for i in range(80, 120):
        wal.insert(i, tid_for(i))

    reopened = ShardedEngine.reopen(group)
    tree = reopened.open_tree("ix")
    stats = replay_group(wal.log, tree, parallel=True)
    assert stats.ok
    assert stats.records == 120
    assert stats.elided + stats.out_of_order + stats.applied == 80
    loser = [p.skipped_uncommitted for p in stats.partitions]
    assert sum(loser) == 40
    values = {v for v, _ in tree.range_scan()}
    assert values == set(range(80))


def test_replay_reports_dead_shards_instead_of_raising():
    group, wal, _committed, _tail = build_wal_group(
        2, committed_keys=80, tail_keys=20, page_size=PAGE, seed=13)
    reopened = ShardedEngine.reopen(group)
    tree = reopened.open_tree("ix")
    # shard 1 was never reopened in this scenario: simulate by replaying
    # against a tree whose member handle is missing
    tree.trees[1] = None
    stats = replay_group(wal.log, tree, parallel=True, shards=[0, 1])
    assert not stats.ok
    bad = [p for p in stats.partitions if p.shard == 1]
    assert bad and all(p.error is not None for p in bad)
    good = [p for p in stats.partitions if p.shard == 0]
    assert good and all(p.ok for p in good)


# ----------------------------------------------------------------------
# through the orchestrator
# ----------------------------------------------------------------------

@pytest.mark.parametrize("wal_mode", ["serial-logical", "parallel-logical"])
def test_orchestrator_wal_modes_recover_the_committed_tail(wal_mode):
    group, wal, committed, tail = build_wal_group(
        4, committed_keys=160, tail_keys=60, page_size=PAGE, seed=21)
    orchestrator = RecoveryOrchestrator(wal=wal.log, wal_mode=wal_mode,
                                        wal_subparts=2)
    recovered, report = orchestrator.recover(group, "ix")
    assert report.ok, [(r.shard, r.error) for r in report.shards]
    assert report.redo is not None and report.redo.elided > 0
    assert all(r.mode == f"wal:{wal_mode}" for r in report.shards)
    assert all(r.replay_seconds >= 0.0 for r in report.shards)
    tree = recovered.open_tree("ix")
    values = {v for v, _ in tree.range_scan()}
    assert set(committed) <= values and set(tail) <= values
    assert fsck_group(recovered).errors == 0


def test_orchestrator_rejects_wal_with_instant_restart():
    from repro.wal import StableLog
    with pytest.raises(ValueError):
        RecoveryOrchestrator(wal=StableLog(), admit_immediately=True)
    with pytest.raises(ValueError):
        RecoveryOrchestrator(wal=StableLog(), wal_mode="bogus")
