"""Partition-aware StableLog iteration (the append-time indexes).

Partitioned replay must never pay a full log re-scan per worker, so the
log indexes its records *as they are appended*: op records into
per-shard LSN-ordered lists, the last SYNC_MARK per shard, and the
committed-xid set.  These tests pin the index semantics — routing,
ordering, bisected ``from_lsn``, rebuild on truncation, and the frame
round-trip of the new shard/token fields.
"""

from repro.storage.sync import tokens_match
from repro.wal import LogRecord, RecordKind, StableLog


def _fill(log: StableLog) -> None:
    log.append(1, RecordKind.OP_INSERT, b"a0", shard=0, token=10)
    log.append(1, RecordKind.OP_INSERT, b"b0", shard=1, token=20)
    log.append(1, RecordKind.OP_DELETE, b"a1", shard=0, token=10)
    log.append(1, RecordKind.COMMIT, b"")
    log.append(0, RecordKind.SYNC_MARK, b"", shard=0, token=11)
    log.append(2, RecordKind.KEY_ADD, b"b1", shard=1, token=20)
    log.append(2, RecordKind.OP_INSERT, b"a2", shard=0, token=11)


def test_records_for_returns_only_that_shards_ops_in_lsn_order():
    log = StableLog()
    _fill(log)
    shard0 = list(log.records_for(0))
    assert [r.payload for r in shard0] == [b"a0", b"a1", b"a2"]
    assert [r.lsn for r in shard0] == sorted(r.lsn for r in shard0)
    assert [r.payload for r in log.records_for(1)] == [b"b0", b"b1"]
    assert list(log.records_for(7)) == []


def test_control_records_never_land_in_a_partition():
    log = StableLog()
    _fill(log)
    kinds = {r.kind for shard in log.shards()
             for r in log.records_for(shard)}
    assert RecordKind.COMMIT not in kinds
    assert RecordKind.SYNC_MARK not in kinds


def test_from_lsn_bisects_within_the_partition():
    log = StableLog()
    _fill(log)
    mark = log.last_sync_mark(0)
    tail = list(log.records_for(0, from_lsn=mark.lsn))
    assert [r.payload for r in tail] == [b"a2"]
    assert list(log.records_for(0, from_lsn=log.last_lsn() + 1)) == []


def test_shards_and_partition_sizes():
    log = StableLog()
    _fill(log)
    assert log.shards() == [0, 1]
    assert log.partition_sizes() == {0: 3, 1: 2}


def test_last_sync_mark_tracks_the_latest_mark_per_shard():
    log = StableLog()
    _fill(log)
    assert tokens_match(log.last_sync_mark(0).token, 11)
    assert log.last_sync_mark(1) is None
    log.append(0, RecordKind.SYNC_MARK, b"", shard=0, token=12)
    assert tokens_match(log.last_sync_mark(0).token, 12)


def test_committed_xids_is_the_commit_record_set():
    log = StableLog()
    _fill(log)
    assert log.committed_xids() == {1}
    log.append(2, RecordKind.COMMIT, b"")
    assert log.committed_xids() == {1, 2}


def test_truncate_before_rebuilds_every_index():
    log = StableLog()
    _fill(log)
    mark_lsn = log.last_sync_mark(0).lsn
    log.truncate_before(mark_lsn + 1)
    assert [r.payload for r in log.records_for(0)] == [b"a2"]
    assert [r.payload for r in log.records_for(1)] == [b"b1"]
    assert log.last_sync_mark(0) is None      # the mark was truncated
    assert log.committed_xids() == set()


def test_frame_roundtrips_shard_and_token():
    record = LogRecord(9, 4, RecordKind.OP_INSERT, b"payload",
                       shard=3, token=0xDEAD)
    back = LogRecord.deserialize(record.serialize())
    assert back == record
    assert back.shard == 3 and tokens_match(back.token, 0xDEAD)


def test_legacy_append_defaults_to_shard_zero_token_zero():
    log = StableLog()
    log.append(1, RecordKind.OP_INSERT, b"xyz")
    (record,) = log.records_for(0)
    assert record.shard == 0 and tokens_match(record.token, 0)
