"""The WAL comparison layer: log substrate, both disciplines, redo."""

import pytest

from repro import StorageEngine, ShadowBLinkTree, TID
from repro.errors import WALError
from repro.wal import (
    LogicalLoggingTree,
    PhysicalLoggingTree,
    RecordKind,
    StableLog,
    decode_op,
    encode_op,
    logical_redo,
    physical_records_containing,
)


def tid_for(i):
    return TID(1 + (i >> 8), i & 0xFF)


# -- StableLog -----------------------------------------------------------

def test_log_lsns_monotonic_and_bytes_counted():
    log = StableLog()
    a = log.append(1, RecordKind.OP_INSERT, b"xyz")
    b = log.append(1, RecordKind.COMMIT, b"")
    assert b == a + 1
    assert len(log) == 2
    assert log.bytes_written == sum(r.serialized_size()
                                    for r in log.records())
    assert log.last_lsn() == b


def test_log_truncate_and_filters():
    log = StableLog()
    for i in range(10):
        log.append(1, RecordKind.OP_INSERT, bytes([i]))
    log.append(1, RecordKind.COMMIT, b"")
    log.truncate_before(5)
    assert all(r.lsn >= 5 for r in log.records())
    assert log.count(RecordKind.COMMIT) == 1
    assert log.bytes_of(RecordKind.COMMIT) > 0
    with pytest.raises(WALError):
        log.truncate_before(10_000)


def test_record_serialization_roundtrip():
    log = StableLog()
    log.append(7, RecordKind.KEY_ADD, b"payload")
    record = next(log.records())
    blob = record.serialize()
    assert b"payload" in blob
    assert record.serialized_size() == len(blob)


def test_op_payload_roundtrip():
    payload = encode_op(b"\x00\x01", TID(3, 4))
    key, tid = decode_op(payload, with_tid=True)
    assert key == b"\x00\x01"
    assert tid == TID(3, 4)
    key2, none = decode_op(encode_op(b"k"), with_tid=False)
    assert key2 == b"k" and none is None


# -- volume comparison (Section 4) -----------------------------------------

def build_both(n=1200, page_size=512):
    e1 = StorageEngine.create(page_size=page_size, seed=1)
    phys = PhysicalLoggingTree.create(e1, "p")
    e2 = StorageEngine.create(page_size=page_size, seed=1)
    logi = LogicalLoggingTree.create(e2, "l", kind="shadow")
    for i in range(n):
        phys.insert(i, tid_for(i))
        logi.insert(i, tid_for(i))
    phys.commit()
    logi.commit()
    return phys, logi


def test_physical_log_larger_than_logical():
    phys, logi = build_both()
    assert phys.log.bytes_written > 2 * logi.log.bytes_written
    # logical: one record per op plus the commit
    assert len(logi.log) == 1200 + 1
    # physical: extra remove/add pairs for every key a split moved
    assert len(phys.log) > len(logi.log)
    assert phys.log.count(RecordKind.KEY_REMOVE) > 0


def test_split_records_match_split_activity():
    phys, _ = build_both()
    assert phys.log.count(RecordKind.PAGE_FORMAT) == \
        phys.tree.stats_splits


def test_lookup_passthrough():
    phys, logi = build_both(n=100)
    assert phys.lookup(5) == tid_for(5)
    assert logi.lookup(5) == tid_for(5)


# -- logical redo ----------------------------------------------------------

def test_redo_rebuilds_identical_index():
    _, logi = build_both(n=800)
    engine = StorageEngine.create(page_size=512, seed=9)
    fresh = ShadowBLinkTree.create(engine, "r")
    stats = logical_redo(logi.log, fresh)
    assert stats.applied == 800
    assert len(fresh.check()) == 800
    for probe in range(0, 800, 97):
        assert fresh.lookup(probe) == tid_for(probe)


def test_redo_is_idempotent():
    """'Recovery-time insertion of a second key which points to the same
    record is detected and prevented.'"""
    _, logi = build_both(n=300)
    engine = StorageEngine.create(page_size=512, seed=9)
    fresh = ShadowBLinkTree.create(engine, "r")
    logical_redo(logi.log, fresh)
    stats = logical_redo(logi.log, fresh)
    assert stats.applied == 0
    assert stats.skipped_duplicates == 300


def test_redo_conflicting_tid_is_an_error():
    _, logi = build_both(n=50)
    engine = StorageEngine.create(page_size=512, seed=9)
    fresh = ShadowBLinkTree.create(engine, "r")
    fresh.insert(0, TID(77, 77))   # same key, different record
    with pytest.raises(WALError):
        logical_redo(logi.log, fresh)


def test_redo_skips_uncommitted_transactions():
    log = StableLog()
    logi = LogicalLoggingTree(
        ShadowBLinkTree.create(StorageEngine.create(page_size=512, seed=3),
                               "x"), log)
    logi.current_xid = 1
    for i in range(20):
        logi.insert(i, tid_for(i))
    logi.commit()
    logi.current_xid = 2               # never commits
    for i in range(20, 30):
        logi.insert(i, tid_for(i))

    engine = StorageEngine.create(page_size=512, seed=9)
    fresh = ShadowBLinkTree.create(engine, "r")
    stats = logical_redo(log, fresh)
    assert stats.applied == 20
    assert fresh.lookup(25) is None


def test_redo_deletes_replay_and_tolerate_missing():
    log = StableLog()
    logi = LogicalLoggingTree(
        ShadowBLinkTree.create(StorageEngine.create(page_size=512, seed=3),
                               "x"), log)
    for i in range(10):
        logi.insert(i, tid_for(i))
    logi.delete(3)
    logi.commit()
    engine = StorageEngine.create(page_size=512, seed=9)
    fresh = ShadowBLinkTree.create(engine, "r")
    stats = logical_redo(log, fresh)
    assert fresh.lookup(3) is None
    assert stats.applied == 11
    stats2 = logical_redo(log, fresh)
    # replaying in order re-inserts key 3 and re-deletes it; the other
    # nine inserts are recognized as duplicates
    assert stats2.applied == 2
    assert stats2.skipped_duplicates == 9
    assert fresh.lookup(3) is None


# -- corruption propagation (Section 4) ----------------------------------------

def test_poisoned_key_reaches_physical_log_only():
    from repro.bench.logvolume import run
    data = run(n=3000, page_size=512)
    assert data["phys_poisoned"] > 0
    assert data["logi_poisoned"] == 0
