"""Shadow-recoverable R-tree: functional parity with brute force, MBR
invariants, crash recovery."""

import random

import pytest

from repro import (
    CrashError,
    KeyNotFoundError,
    RandomSubsetCrash,
    StorageEngine,
    TID,
)
from repro.errors import TreeError
from repro.rtree import EVERYTHING, Rect, RTreeIndex

PAGE = 512


@pytest.fixture
def engine():
    return StorageEngine.create(page_size=PAGE, seed=5)


@pytest.fixture
def rt(engine):
    return RTreeIndex.create(engine, "r")


def random_rects(n, seed=0, span=1000.0, size=20.0):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x, y = rng.uniform(0, span), rng.uniform(0, span)
        out.append((Rect(x, y, x + rng.uniform(0.5, size),
                         y + rng.uniform(0.5, size)),
                    TID(1 + (i >> 8), i & 0xFF)))
    return out


# -- Rect ----------------------------------------------------------------

def test_rect_geometry():
    a = Rect(0, 0, 10, 10)
    b = Rect(5, 5, 15, 15)
    assert a.intersects(b) and b.intersects(a)
    assert a.union(b) == Rect(0, 0, 15, 15)
    assert a.union(b).contains(a)
    assert a.enlargement(b) == 15 * 15 - 100
    assert not a.contains(b)
    assert Rect(0, 0, 20, 20).contains(b)
    assert not a.intersects(Rect(11, 11, 12, 12))


def test_rect_rejects_malformed():
    with pytest.raises(TreeError):
        Rect(5, 0, 1, 10)


def test_point_rects():
    p = Rect(3, 3, 3, 3)
    assert p.area() == 0
    assert p.intersects(Rect(0, 0, 5, 5))


# -- functional vs brute force ----------------------------------------------

def test_search_matches_brute_force(rt):
    data = random_rects(600, seed=2)
    for rect, tid in data:
        rt.insert(rect, tid)
    rt.engine.sync()
    rng = random.Random(9)
    for _ in range(40):
        qx, qy = rng.uniform(0, 1000), rng.uniform(0, 1000)
        q = Rect(qx, qy, qx + 60, qy + 60)
        got = set(rt.search(q))
        want = {(r, t) for r, t in data if r.intersects(q)}
        assert got == want


def test_check_counts_all_entries(rt):
    data = random_rects(500, seed=3)
    for rect, tid in data:
        rt.insert(rect, tid)
    rt.engine.sync()
    assert len(rt.check()) == 500
    assert rt.stats_splits > 0


def test_delete_exact_entry(rt):
    data = random_rects(200, seed=4)
    for rect, tid in data:
        rt.insert(rect, tid)
    victim_rect, victim_tid = data[77]
    rt.delete(victim_rect, victim_tid)
    assert (victim_rect, victim_tid) not in rt.search(victim_rect)
    assert len(rt.check()) == 199
    with pytest.raises(KeyNotFoundError):
        rt.delete(victim_rect, victim_tid)


def test_mbr_invariant_everywhere(rt):
    for rect, tid in random_rects(800, seed=5):
        rt.insert(rect, tid)
    rt.engine.sync()
    rt.check()   # raises if any child escapes its promised MBR


def test_reopen_after_clean_shutdown(engine, rt):
    data = random_rects(300, seed=6)
    for rect, tid in data:
        rt.insert(rect, tid)
    engine.shutdown()
    engine2 = StorageEngine.reopen(engine)
    rt2 = RTreeIndex.open(engine2, "r")
    assert len(rt2.check()) == 300
    rect, tid = data[5]
    assert (rect, tid) in rt2.search(rect)


# -- crash recovery --------------------------------------------------------------


@pytest.mark.parametrize("seed", range(12))
def test_crash_campaign(seed):
    rng = random.Random(seed)
    engine = StorageEngine.create(page_size=PAGE, seed=seed)
    rt = RTreeIndex.create(engine, "r")
    engine.crash_policy = RandomSubsetCrash(p=0.25, seed=seed * 5 + 2)
    committed, pending, crashed = [], [], False
    i = 0
    while i < 350 and not crashed:
        x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
        rect = Rect(x, y, x + rng.uniform(1, 20), y + rng.uniform(1, 20))
        tid = TID(1 + (i >> 8), i & 0xFF)
        try:
            rt.insert(rect, tid)
            pending.append((rect, tid))
            i += 1
            if i % 25 == 0:
                engine.sync()
                committed.extend(pending)
                pending = []
        except CrashError:
            crashed = True
    if not crashed:
        pytest.skip("no crash at this seed")
    engine2 = StorageEngine.reopen_after_crash(engine)
    rt2 = RTreeIndex.open(engine2, "r")
    for rect, tid in committed:
        assert (rect, tid) in rt2.search(rect), (rect, tid)
    # the index keeps working and the full scan covers everything
    for j in range(50):
        x = 2000.0 + j
        rt2.insert(Rect(x, x, x + 1, x + 1), TID(9, j))
    engine2.sync()
    tids = {t for _r, t in rt2.search(EVERYTHING)}
    assert {t for _r, t in committed} <= tids


def test_results_deduplicated_after_repair():
    """Crash repair may copy a straddling entry into both rebuilt halves;
    searches must still return it once."""
    seed = 5
    rng = random.Random(seed)
    engine = StorageEngine.create(page_size=PAGE, seed=seed)
    rt = RTreeIndex.create(engine, "r")
    engine.crash_policy = RandomSubsetCrash(p=0.3, seed=seed * 5 + 2)
    inserted, crashed = [], False
    i = 0
    while i < 350 and not crashed:
        x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
        rect = Rect(x, y, x + rng.uniform(1, 20), y + rng.uniform(1, 20))
        tid = TID(1 + (i >> 8), i & 0xFF)
        try:
            rt.insert(rect, tid)
            inserted.append((rect, tid))
            i += 1
            if i % 25 == 0:
                engine.sync()
        except CrashError:
            crashed = True
    if not crashed:
        pytest.skip("no crash at this seed")
    engine2 = StorageEngine.reopen_after_crash(engine)
    rt2 = RTreeIndex.open(engine2, "r")
    results = rt2.search(EVERYTHING)
    tids = [t for _r, t in results]
    assert len(tids) == len(set(tids))
