"""fsck against deliberately corrupted durable state.

Each test takes a healthy synced tree, injects one specific corruption
through the buffer layer (so buffer and disk agree), and asserts fsck
classifies it — without mutating the tree."""

# corruption injection writes buffers behind the commit protocol on
# purpose: that is exactly what fsck must catch (R012 is the per-path
# form of the same dirty discipline)
# lint: disable=R002,R003,R012

import pytest

from repro import TID, TREE_CLASSES, StorageEngine
from repro.constants import PAGE_LEAF
from repro.core.meta import MetaView
from repro.core.nodeview import NodeView
from repro.storage import page as P
from repro.tools import fsck_tree

from ..conftest import tid_for

PAGE = 512


@pytest.fixture
def shadow_tree():
    engine = StorageEngine.create(page_size=PAGE, seed=23)
    tree = TREE_CLASSES["shadow"].create(engine, "ix", codec="uint32")
    for i in range(300):
        tree.insert(i, tid_for(i))
        if (i + 1) % 64 == 0:
            engine.sync()
    engine.sync()
    return tree


def _meta_root(tree):
    mbuf = tree.file.pin_meta()
    try:
        return MetaView(mbuf.data, tree.page_size).root
    finally:
        tree.file.unpin(mbuf)


def _leftmost_leaf(tree):
    page_no = _meta_root(tree)
    while True:
        buf = tree.file.pin(page_no)
        try:
            view = NodeView(buf.data, tree.page_size)
            if view.is_leaf:
                return page_no
            page_no = view.child_at(0)
        finally:
            tree.file.unpin(buf)


def _corrupt(tree, page_no, mutate):
    """Apply *mutate(buf, view)* to a page and push it to disk."""
    buf = tree.file.pin(page_no)
    try:
        mutate(buf, NodeView(buf.data, tree.page_size))
        tree.file.mark_dirty(buf)
    finally:
        tree.file.unpin(buf)
    tree.engine.sync()


def _messages(report, severity=None):
    return [f.message for f in report.findings
            if severity is None or f.severity == severity]


def test_zeroed_reachable_child_is_an_error(shadow_tree):
    leaf = _leftmost_leaf(shadow_tree)

    def zero(buf, view):
        buf.data[:] = bytes(len(buf.data))

    _corrupt(shadow_tree, leaf, zero)
    report = fsck_tree(shadow_tree)
    assert report.errors >= 1
    assert any("unreadable/zeroed page reachable" in m
               for m in _messages(report, "error"))


def test_out_of_order_keys_are_an_error(shadow_tree):
    leaf = _leftmost_leaf(shadow_tree)

    def swap_lines(buf, view):
        first, second = P.get_line(buf.data, 0), P.get_line(buf.data, 1)
        P.set_line(buf.data, 0, second)
        P.set_line(buf.data, 1, first)

    _corrupt(shadow_tree, leaf, swap_lines)
    report = fsck_tree(shadow_tree)
    assert any("keys out of order" in m for m in _messages(report, "error"))


def test_corrupt_meta_page_is_fatal(shadow_tree):
    mbuf = shadow_tree.file.pin_meta()
    try:
        mbuf.data[:P.HEADER_SIZE] = bytes(P.HEADER_SIZE)
        shadow_tree.file.mark_dirty(mbuf)
    finally:
        shadow_tree.file.unpin(mbuf)
    report = fsck_tree(shadow_tree)
    assert report.errors == 1
    assert any("meta page invalid" in m for m in _messages(report, "error"))


def test_duplicate_child_pointer_is_an_error(shadow_tree):
    root = _meta_root(shadow_tree)

    def duplicate_child(buf, view):
        assert not view.is_leaf and view.n_keys >= 2
        view.set_child_at(1, view.child_at(0))

    _corrupt(shadow_tree, root, duplicate_child)
    report = fsck_tree(shadow_tree, check_peers=False)
    assert any("reached twice" in m for m in _messages(report, "error"))


def test_peer_token_mismatch_is_a_warning(shadow_tree):
    leaf = _leftmost_leaf(shadow_tree)

    def skew_token(buf, view):
        view.right_peer_token = view.right_peer_token + 1

    _corrupt(shadow_tree, leaf, skew_token)
    report = fsck_tree(shadow_tree)
    assert any("peer link tokens disagree" in m
               for m in _messages(report, "warn"))


def test_orphan_page_is_reported(shadow_tree):
    page_no = shadow_tree.file.allocate()
    buf = shadow_tree.file.pin(page_no)
    try:
        view = NodeView(buf.data, shadow_tree.page_size)
        view.init_page(PAGE_LEAF,
                       sync_token=shadow_tree.engine.sync_state.token())
        shadow_tree.file.mark_dirty(buf)
    finally:
        shadow_tree.file.unpin(buf)
    shadow_tree.engine.sync()
    report = fsck_tree(shadow_tree)
    assert page_no in report.orphans
    assert any("orphaned pages" in m for m in _messages(report, "info"))


def test_pending_reorg_backup_is_informational():
    engine = StorageEngine.create(page_size=PAGE, seed=5)
    tree = TREE_CLASSES["reorg"].create(engine, "ix", codec="uint32")
    splits = tree.stats_splits
    i = 0
    while tree.stats_splits == splits:
        tree.insert(i, TID(1, i % 100))
        i += 1
    report = fsck_tree(tree)
    assert report.errors == 0
    assert any("backup keys" in m for m in _messages(report, "info"))
