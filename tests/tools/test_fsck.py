"""The offline verifier."""

import pytest

from repro import (
    CrashError,
    CrashOnceKeepingPages,
    StorageEngine,
    TID,
    TREE_CLASSES,
)
from repro.tools import fsck_tree

from ..conftest import fill_tree, tid_for


def test_clean_tree_reports_no_problems(tree):
    fill_tree(tree, range(300))
    report = fsck_tree(tree)
    assert report.errors == 0
    assert report.warnings == 0
    assert report.keys == 300
    assert report.leaves >= 2
    assert "errors: 0" in report.render()


def test_empty_tree(tree):
    report = fsck_tree(tree)
    assert report.errors == 0
    assert report.keys == 0


def test_crashed_tree_findings_then_healed():
    engine = StorageEngine.create(page_size=512, seed=11)
    tree = TREE_CLASSES["shadow"].create(engine, "ix")
    committed = set(range(96))
    for i in sorted(committed):
        tree.insert(i, tid_for(i))
        if (i + 1) % 32 == 0:
            engine.sync()
    engine.sync()
    splits = tree.stats_splits
    i = 96
    while tree.stats_splits == splits:
        tree.insert(i, tid_for(i))
        i += 1
    with pytest.raises(CrashError):
        engine.sync(CrashOnceKeepingPages(set()))  # lose the window

    engine2 = StorageEngine.reopen_after_crash(engine)
    tree2 = TREE_CLASSES["shadow"].open(engine2, "ix")
    before = fsck_tree(tree2)
    # the durable state is the pre-window tree: consistent, maybe orphans
    assert before.errors == 0
    assert before.keys >= len(committed)

    # now a crash that leaves real damage: parent durable, children lost
    splits = tree2.stats_splits
    while tree2.stats_splits == splits:
        tree2.insert(i, tid_for(i))
        i += 1
    from tests.recovery.helpers import find_split
    split = find_split(tree2)
    keep = {("ix", split["parent"])} if split["parent"] else set()
    with pytest.raises(CrashError):
        engine2.sync(CrashOnceKeepingPages(keep))
    engine3 = StorageEngine.reopen_after_crash(engine2)
    tree3 = TREE_CLASSES["shadow"].open(engine3, "ix")
    damaged = fsck_tree(tree3)
    assert damaged.errors + damaged.warnings > 0

    # touch everything: the lazy repairs run; fsck comes back clean-ish
    for key in sorted(committed):
        assert tree3.lookup(key) is not None
    list(tree3.range_scan())
    healed = fsck_tree(tree3)
    assert healed.errors == 0
    assert healed.keys >= len(committed)


def test_orphan_census_matches_gc():
    from repro.core.gc import collect_garbage
    engine = StorageEngine.create(page_size=512, seed=2)
    tree = TREE_CLASSES["shadow"].create(engine, "ix")
    fill_tree(tree, range(400), sync_every=400)
    report = fsck_tree(tree)
    gc_report = collect_garbage(tree)
    assert len(report.orphans) == gc_report.leaked
    after = fsck_tree(tree)
    assert after.orphans == []
