"""Regression tests for the exception-window pin leaks the flow lint
(R011/R013) surfaced: a failure injected into the middle of a descent,
and a crash-recovery repair, must both leave the buffer pool with zero
outstanding pins."""

import pytest

from repro import TID, TREE_CLASSES, StorageEngine
from repro.core.concurrency import set_schedule_hook

from ..recovery.helpers import build_to_split, crash_keeping

PAGE = 512


def tid_for(i: int) -> TID:
    return TID(1 + (i >> 8), i & 0xFF)


class _FaultOnPinChild:
    """Scheduler hook that raises right after ``_descend`` pins a child
    — inside the window the exception guard has to cover."""

    def __init__(self, after: int = 0):
        self.countdown = after

    def point(self, kind, **detail):
        if kind != "pin_child":
            return
        if self.countdown == 0:
            raise RuntimeError("injected fault after child pin")
        self.countdown -= 1


@pytest.mark.parametrize("kind", sorted(TREE_CLASSES))
def test_descend_fault_releases_every_pin(kind):
    engine = StorageEngine.create(page_size=PAGE, seed=3)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    for i in range(300):
        tree.insert(i, tid_for(i))
    assert tree.height >= 2
    assert tree.file.pool.total_pins() == 0

    previous = set_schedule_hook(_FaultOnPinChild())
    try:
        # key 0 is far from the leaf finger, forcing a full descent
        with pytest.raises(RuntimeError, match="injected fault"):
            tree.lookup(0)
    finally:
        set_schedule_hook(previous)
    assert tree.file.pool.total_pins() == 0

    # the tree is still fully usable after the aborted descent
    assert tree.lookup(0) is not None
    tree.insert(10_000, tid_for(10_000))
    assert tree.lookup(10_000) is not None
    assert tree.file.pool.total_pins() == 0


@pytest.mark.parametrize("keep", ["parent", "pa"])
def test_reorg_recovery_repair_leaves_no_pins(keep):
    """The lost-child repair path (``_source_parent_entry`` and friends)
    takes extra pins on the parent and source pages; after recovery every
    one of them must be back."""
    engine, tree, committed, _, info = build_to_split("reorg")
    assert info["parent"] is not None
    crash_keeping(engine, tree, tree.file.name, {info[keep]})

    engine2 = StorageEngine.reopen_after_crash(engine)
    tree2 = TREE_CLASSES["reorg"].open(engine2, "ix")
    missing = [k for k in committed if tree2.lookup(k) is None]
    assert not missing
    assert tree2.file.pool.total_pins() == 0
