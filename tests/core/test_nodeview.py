"""NodeView: line-table operations, crash-safe orderings, backup region."""

# page-layer unit tests: raw NodeViews over bytearrays with hand-rolled
# tokens — there is no buffer pool to dirty and no SyncState to consult
# (R012 is the per-path form of the same dirty discipline)
# lint: disable=R003,R004,R012

import pytest

from repro.constants import PAGE_INTERNAL, PAGE_LEAF
from repro.core import items as I
from repro.core.keys import TID
from repro.core.nodeview import BACKUP_RECORD_SIZE, NodeView
from repro.errors import PageError, PageFullError

PAGE = 512


def leaf_view(keys=()):
    view = NodeView(bytearray(PAGE), PAGE)
    view.init_page(PAGE_LEAF, level=0, sync_token=5)
    for i, key in enumerate(keys):
        blob = I.pack_leaf_item(key, TID(1, i))
        slot, _ = view.search(key)
        view.insert_item(slot, blob)
    return view


def k(i):
    return i.to_bytes(4, "big")


# -- basics -----------------------------------------------------------------

def test_init_page_sets_header():
    view = leaf_view()
    assert view.is_leaf
    assert view.n_keys == 0
    assert view.sync_token == 5
    assert view.free_space() == PAGE - 64


def test_insert_and_read_back_sorted():
    view = leaf_view([k(3), k(1), k(2)])
    assert [view.key_at(i) for i in range(3)] == [k(1), k(2), k(3)]
    assert view.tid_at(0).line == 1   # k(1) was inserted second


def test_search_exact_and_miss():
    view = leaf_view([k(10), k(20), k(30)])
    assert view.search(k(20)) == (1, True)
    assert view.search(k(25)) == (2, False)
    assert view.search(k(5)) == (0, False)
    assert view.search(k(99)) == (3, False)


def test_min_max_key():
    view = leaf_view([k(5), k(9), k(7)])
    assert view.min_key() == k(5)
    assert view.max_key() == k(9)


def test_insert_out_of_range_index_rejected():
    view = leaf_view([k(1)])
    with pytest.raises(PageError):
        view.insert_item(5, I.pack_leaf_item(k(2), TID(1, 1)))


def test_page_fills_up():
    view = leaf_view()
    blob = I.pack_leaf_item(k(0), TID(1, 1))
    capacity = (PAGE - 64) // (len(blob) + 2)
    for i in range(capacity):
        view.insert_item(i, I.pack_leaf_item(k(i), TID(1, i)))
    assert not view.can_fit(len(blob))
    with pytest.raises(PageFullError):
        view.insert_item(capacity, blob)


# -- the paper's crash-safe insert ordering (Section 3.3) --------------------

def test_mid_insert_snapshots_always_detectable():
    """Capture the page bytes between every byte-write step of an insert:
    each intermediate image must be either the pre-insert page or contain
    a detectable duplicate line-table offset."""
    view = leaf_view([k(i) for i in range(0, 20, 2)])
    before = bytes(view.buf)
    snapshots = []
    view.insert_item(3, I.pack_leaf_item(k(5), TID(1, 99)),
                     step_hook=lambda label: snapshots.append(
                         (label, bytes(view.buf))))
    assert len(snapshots) >= 3
    for label, image in snapshots:
        snap_view = NodeView(bytearray(image), PAGE)
        dup = snap_view.find_intra_page_inconsistency()
        unchanged_table = image[64:snap_view.lower] == \
            before[64:NodeView(bytearray(before), PAGE).lower]
        assert dup is not None or unchanged_table, label


def test_intra_page_repair_restores_old_page():
    """Repairing a mid-insert image must yield exactly the pre-insert key
    set (Section 3.3.2: delete the duplicate entry)."""
    view = leaf_view([k(i) for i in range(0, 20, 2)])
    keys_before = list(view.keys())
    images = []
    view.insert_item(3, I.pack_leaf_item(k(5), TID(1, 99)),
                     step_hook=lambda label: images.append(bytes(view.buf)))
    for image in images:
        snap = NodeView(bytearray(image), PAGE)
        snap.repair_intra_page()
        assert snap.find_intra_page_inconsistency() is None
        assert list(snap.keys()) == keys_before


def test_delete_item_shifts_left():
    view = leaf_view([k(1), k(2), k(3)])
    view.delete_item(1)
    assert list(view.keys()) == [k(1), k(3)]
    assert view.n_keys == 2


def test_delete_out_of_range_rejected():
    view = leaf_view([k(1)])
    with pytest.raises(PageError):
        view.delete_item(1)


# -- compaction ---------------------------------------------------------------

def test_compact_reclaims_dead_item_bytes():
    view = leaf_view([k(i) for i in range(10)])
    for _ in range(5):
        view.delete_item(0)
    free_before = view.free_space()
    view.compact()
    assert view.free_space() > free_before
    assert list(view.keys()) == [k(i) for i in range(5, 10)]


def test_insert_compacts_when_fragmented():
    view = leaf_view()
    blob_size = len(I.pack_leaf_item(k(0), TID(1, 0)))
    capacity = (PAGE - 64) // (blob_size + 2)
    for i in range(capacity):
        view.insert_item(i, I.pack_leaf_item(k(i), TID(1, i)))
    view.delete_item(0)   # dead bytes remain in the heap
    # contiguous space is only the freed line entry, but compaction makes
    # room for the item
    view.insert_item(view.n_keys, I.pack_leaf_item(k(999), TID(1, 1)))
    assert view.n_keys == capacity


# -- replace_items -------------------------------------------------------------

def test_replace_items_preserves_identity_fields():
    view = leaf_view([k(1)])
    view.left_peer = 9
    view.right_peer = 10
    blobs = [I.pack_leaf_item(k(i), TID(2, i)) for i in (4, 5, 6)]
    view.replace_items(blobs)
    assert list(view.keys()) == [k(4), k(5), k(6)]
    assert view.left_peer == 9
    assert view.right_peer == 10
    assert view.is_leaf


def test_replace_items_overflow_rejected():
    view = leaf_view()
    big = I.pack_leaf_item(bytes(PAGE), TID(1, 1))
    with pytest.raises(PageFullError):
        view.replace_items([big])


# -- reorg backup region (Section 3.4) ------------------------------------------

def backed_up_view(live_low=True):
    view = NodeView(bytearray(PAGE), PAGE)
    view.init_page(PAGE_LEAF, level=0, sync_token=8)
    live = [I.pack_leaf_item(k(i), TID(1, i)) for i in range(5)]
    backup = [I.pack_leaf_item(k(i), TID(1, i)) for i in range(5, 10)]
    if not live_low:
        live, backup = backup, live
    view.replace_items(live)
    view.write_backup(backup, prev_total=10, live_is_low=live_low,
                      old_left_peer=3, old_left_token=30,
                      old_right_peer=4, old_right_token=40)
    return view


def test_backup_layout_and_accessors():
    view = backed_up_view()
    assert view.n_keys == 5
    assert view.backup_count == 5
    assert view.prev_n_keys == 10
    assert view.live_is_low
    assert view.backup_record() == (3, 30, 4, 40)
    backup_keys = [I.item_key(b, 0) for b in view.backup_items()]
    assert backup_keys == [k(i) for i in range(5, 10)]


def test_restore_backup_recreates_original_low_live():
    view = backed_up_view(live_low=True)
    view.restore_backup()
    assert view.n_keys == 10
    assert list(view.keys()) == [k(i) for i in range(10)]
    assert view.prev_n_keys == 0
    assert view.backup_count == 0
    assert view.left_peer == 3 and view.left_peer_token == 30
    assert view.right_peer == 4 and view.right_peer_token == 40
    assert view.new_page == 0


def test_restore_backup_recreates_original_high_live():
    """When the live half is the high half, restore must interleave the
    line tables back into key order."""
    view = backed_up_view(live_low=False)
    view.restore_backup()
    assert list(view.keys()) == [k(i) for i in range(10)]


def test_reclaim_backup_drops_duplicates():
    view = backed_up_view()
    view.new_page = 77
    free_before = view.free_space()
    view.reclaim_backup()
    assert view.prev_n_keys == 0
    assert view.backup_count == 0
    assert view.new_page == 0
    assert list(view.keys()) == [k(i) for i in range(5)]
    assert view.free_space() > free_before


def test_insert_into_backed_up_page_rejected():
    """The reclamation check must run first (Section 3.4)."""
    view = backed_up_view()
    with pytest.raises(PageError):
        view.insert_item(0, I.pack_leaf_item(k(99), TID(1, 0)))
    with pytest.raises(PageError):
        view.delete_item(0)


def test_double_backup_rejected():
    view = backed_up_view()
    with pytest.raises(PageError):
        view.write_backup([], prev_total=1, live_is_low=True,
                          old_left_peer=0, old_left_token=0,
                          old_right_peer=0, old_right_token=0)


def test_backup_record_size_constant():
    assert BACKUP_RECORD_SIZE == 24
