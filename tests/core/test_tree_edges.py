"""Edge cases across page sizes, key shapes, and boundary conditions."""

import pytest

from repro import StorageEngine, TID, TREE_CLASSES
from repro.errors import TreeError

from ..conftest import tid_for


@pytest.mark.parametrize("page_size", [256, 1024, 4096])
@pytest.mark.parametrize("kind", ["normal", "shadow", "reorg", "hybrid"])
def test_page_size_sweep(kind, page_size):
    engine = StorageEngine.create(page_size=page_size, seed=3)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    n = 400
    for i in range(n):
        tree.insert(i, tid_for(i))
        if i % 100 == 99:
            engine.sync()
    engine.sync()
    assert len(tree.check()) == n
    assert tree.lookup(n // 2) == tid_for(n // 2)


@pytest.mark.parametrize("kind", ["shadow", "reorg"])
def test_large_byte_keys(kind):
    engine = StorageEngine.create(page_size=1024, seed=3)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="bytes")
    keys = [bytes([i]) * 40 for i in range(1, 120)]
    for i, key in enumerate(keys):
        tree.insert(key, TID(1, i))
    engine.sync()
    assert [v for v, _ in tree.range_scan()] == sorted(keys)
    assert tree.height >= 2


@pytest.mark.parametrize("kind", ["shadow", "reorg"])
def test_key_too_large_raises_cleanly(kind):
    from repro.errors import ReproError
    engine = StorageEngine.create(page_size=256, seed=3)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="bytes")
    with pytest.raises(ReproError):
        for i in range(4):
            tree.insert(bytes([i]) * 200, TID(1, i))


def test_single_key_tree_survives_restart(engine, tree_kind):
    cls = TREE_CLASSES[tree_kind]
    tree = cls.create(engine, "ix")
    tree.insert(1, TID(1, 1))
    engine.shutdown()
    from repro import StorageEngine
    engine2 = StorageEngine.reopen(engine)
    tree2 = cls.open(engine2, "ix")
    assert tree2.lookup(1) == TID(1, 1)


def test_boundary_key_values(tree):
    for value in (0, 1, 2**31, 2**32 - 1):
        tree.insert(value, TID(1, 0))
    assert [v for v, _ in tree.range_scan()] == [0, 1, 2**31, 2**32 - 1]
    assert tree.lookup(2**32 - 1) == TID(1, 0)


def test_min_key_sentinel_never_collides(tree):
    """Key 0 encodes to four zero bytes, not the empty minus-infinity
    sentinel — the two must stay distinct."""
    tree.insert(0, TID(1, 0))
    assert tree.lookup(0) == TID(1, 0)
    from ..conftest import fill_tree
    fill_tree(tree, range(1, 300))
    assert tree.lookup(0) == TID(1, 0)
    assert [v for v, _ in tree.range_scan(hi=2)] == [0, 1]


def test_alternating_ends_insertion(tree):
    """Pathological order: alternate smallest/largest remaining."""
    lo, hi = 0, 999
    while lo <= hi:
        tree.insert(lo, tid_for(lo))
        if lo != hi:
            tree.insert(hi, tid_for(hi))
        lo += 1
        hi -= 1
    tree.engine.sync()
    assert len(tree.check()) == 1000


def test_sparse_huge_gaps(tree):
    keys = [0, 1, 2**10, 2**20, 2**30, 2**31, 2**32 - 2]
    for key in keys:
        tree.insert(key, tid_for(key % 1000))
    tree.engine.sync()
    assert [v for v, _ in tree.range_scan()] == keys


@pytest.mark.parametrize("kind", ["shadow", "reorg", "hybrid"])
def test_many_sync_windows(kind):
    """Sync after every single insert: every split straddles its own
    window; tokens and deferred frees churn maximally."""
    engine = StorageEngine.create(page_size=256, seed=3)
    tree = TREE_CLASSES[kind].create(engine, "ix")
    for i in range(150):
        tree.insert(i, tid_for(i))
        engine.sync()
    assert len(tree.check()) == 150


def test_route_on_empty_internal_rejected():
    from repro.constants import PAGE_INTERNAL
    from repro.core.nodeview import NodeView
    view = NodeView(bytearray(256), 256)
    # raw NodeView over a bytearray — no buffer pool, nothing to dirty
    view.init_page(PAGE_INTERNAL, level=1)  # lint: disable=R003,R012
    index, found = view.search(b"\x00")
    assert (index, found) == (0, False)
