"""Delete-side structure management: empty-page reclamation, root
collapse (the Lanin-Shasha-style merge mechanism)."""

import pytest

from repro import TID, TREE_CLASSES
from repro.core.nodeview import NodeView

from ..conftest import SMALL_PAGE, fill_tree, tid_for


def reachable_pages(tree):
    pages = set()
    stack = [tree._root_page()]
    while stack:
        page_no = stack.pop()
        if page_no in pages or page_no == 0:
            continue
        pages.add(page_no)
        buf = tree.file.pin(page_no)
        try:
            view = NodeView(buf.data, tree.page_size)
            if not view.is_leaf:
                stack.extend(view.child_at(i) for i in range(view.n_keys))
        finally:
            tree.file.unpin(buf)
    return pages


def test_emptied_leaf_is_unlinked_and_freed(tree):
    fill_tree(tree, range(400))
    pages_with_keys = reachable_pages(tree)
    # delete a contiguous run to empty at least one whole leaf
    for key in range(100, 200):
        tree.delete(key)
    tree.engine.sync()
    remaining = reachable_pages(tree)
    assert len(remaining) < len(pages_with_keys)
    pairs = tree.check()
    values = {int.from_bytes(k, "big") for k, _ in pairs}
    assert values == set(range(100)) | set(range(200, 400))


def test_delete_everything_collapses_to_single_leaf(tree):
    fill_tree(tree, range(400))
    assert tree.height >= 2
    for key in range(400):
        tree.delete(key)
        if key % 64 == 0:
            tree.engine.sync()
    tree.engine.sync()
    assert tree.check() == []
    assert tree.height == 1
    # the tree is still usable
    tree.insert(7, TID(1, 1))
    assert tree.lookup(7) == TID(1, 1)


def test_freed_pages_are_recycled(tree):
    fill_tree(tree, range(400))
    for key in range(400):
        tree.delete(key)
    tree.engine.sync()
    recycled_before = tree.file.freelist.stats_recycled
    pages_before = tree.file.n_pages
    fill_tree(tree, range(1000, 1400))
    # growth must reuse freed pages rather than only extending
    grew = tree.file.n_pages - pages_before
    recycled = tree.file.freelist.stats_recycled - recycled_before
    assert recycled > 0
    assert grew < 30


def test_scan_correct_after_heavy_deletes(tree):
    fill_tree(tree, range(500))
    alive = set(range(500))
    for key in list(range(0, 500, 2)) + list(range(1, 250, 2)):
        tree.delete(key)
        alive.discard(key)
    tree.engine.sync()
    assert [v for v, _ in tree.range_scan()] == sorted(alive)


def test_delete_reinsert_cycles_stay_consistent(tree):
    fill_tree(tree, range(300))
    for cycle in range(3):
        for key in range(0, 300, 3):
            tree.delete(key)
        tree.engine.sync()
        for key in range(0, 300, 3):
            tree.insert(key, tid_for(key))
        tree.engine.sync()
    assert len(tree.check()) == 300


@pytest.mark.parametrize("kind", ["shadow", "reorg"])
def test_slot_zero_reclamation_keeps_routing(engine, kind):
    """Emptying the leftmost child exercises the absorb-into-slot-0 path;
    every remaining key must stay reachable."""
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    fill_tree(tree, range(300))
    # empty the leftmost leaf by deleting the smallest keys
    for key in range(80):
        tree.delete(key)
    tree.engine.sync()
    pairs = tree.check()
    assert {int.from_bytes(k, "big") for k, _ in pairs} == \
        set(range(80, 300))
    for probe in (80, 150, 299):
        assert tree.lookup(probe) == tid_for(probe)
