"""On-page item formats: packing, in-place pointer rewrites."""

from repro.core import items as I
from repro.core.keys import TID


def test_leaf_item_roundtrip():
    blob = I.pack_leaf_item(b"\x00\x00\x00\x07", TID(3, 9))
    buf = bytearray(64)
    buf[10:10 + len(blob)] = blob
    assert I.item_key(buf, 10) == b"\x00\x00\x00\x07"
    assert I.item_tid(buf, 10) == TID(3, 9)
    assert I.leaf_item_bytes(buf, 10) == blob
    assert len(blob) == I.leaf_item_size(b"\x00\x00\x00\x07")


def test_normal_internal_item_roundtrip():
    blob = I.pack_internal_item(b"key", 77)
    buf = bytearray(64)
    buf[0:len(blob)] = blob
    assert I.item_key(buf, 0) == b"key"
    assert I.item_child(buf, 0) == 77
    assert len(blob) == I.internal_item_size(b"key", shadow=False)


def test_shadow_internal_item_carries_prev():
    blob = I.pack_internal_item(b"key", 77, prev=55)
    buf = bytearray(64)
    buf[0:len(blob)] = blob
    assert I.item_child(buf, 0) == 77
    assert I.item_prev(buf, 0) == 55
    assert len(blob) == I.internal_item_size(b"key", shadow=True)
    assert len(blob) == I.internal_item_size(b"key", shadow=False) + 4


def test_in_place_child_rewrite_preserves_key():
    """Shadow split step (5): K1's childPtr is redirected without touching
    the key bytes."""
    blob = I.pack_internal_item(b"stable-key", 10, prev=20)
    buf = bytearray(64)
    buf[0:len(blob)] = blob
    I.set_item_child(buf, 0, 999)
    assert I.item_child(buf, 0) == 999
    assert I.item_prev(buf, 0) == 20
    assert I.item_key(buf, 0) == b"stable-key"


def test_in_place_prev_rewrite():
    """Shadow split steps (2)/(3): prevPtr reassignment in place."""
    blob = I.pack_internal_item(b"k", 1, prev=2)
    buf = bytearray(32)
    buf[0:len(blob)] = blob
    I.set_item_prev(buf, 0, 42)
    assert I.item_prev(buf, 0) == 42
    assert I.item_child(buf, 0) == 1


def test_empty_key_items():
    """The minus-infinity sentinel is a zero-length key."""
    blob = I.pack_internal_item(b"", 5, prev=6)
    buf = bytearray(32)
    buf[0:len(blob)] = blob
    assert I.item_key(buf, 0) == b""
    assert I.item_child(buf, 0) == 5
    assert I.item_prev(buf, 0) == 6


def test_item_size_at_all_shapes():
    leaf = I.pack_leaf_item(b"abcd", TID(1, 2))
    norm = I.pack_internal_item(b"abcd", 1)
    shad = I.pack_internal_item(b"abcd", 1, prev=2)
    buf = bytearray(128)
    buf[0:len(leaf)] = leaf
    assert I.item_size_at(buf, 0, leaf=True, shadow=False) == len(leaf)
    buf[0:len(norm)] = norm
    assert I.item_size_at(buf, 0, leaf=False, shadow=False) == len(norm)
    buf[0:len(shad)] = shad
    assert I.item_size_at(buf, 0, leaf=False, shadow=True) == len(shad)


def test_overhead_constants():
    assert I.LEAF_OVERHEAD == 8
    assert I.INTERNAL_OVERHEAD == 6
    assert I.SHADOW_OVERHEAD == 10
