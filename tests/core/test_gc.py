"""Garbage collection / freelist regeneration (Section 3.3.3)."""

import pytest

from repro import (
    CrashError,
    RandomSubsetCrash,
    StorageEngine,
    TID,
    TREE_CLASSES,
)
from repro.core.gc import collect_garbage

from ..conftest import fill_tree, tid_for


def test_clean_tree_has_little_garbage(tree):
    fill_tree(tree, range(400))
    report = collect_garbage(tree)
    # a crash-free tree recycles through the freelist; at most a handful
    # of deferred pages were awaiting the final sync
    assert report.leaked <= 3
    assert len(tree.check()) == 400


def test_shadow_churn_is_reclaimed(engine):
    """Shadow splits retire a page per split; without reuse the file would
    double.  GC must find any stragglers and the tree survives."""
    tree = TREE_CLASSES["shadow"].create(engine, "ix")
    fill_tree(tree, range(600), sync_every=600)  # one big window
    report = collect_garbage(tree)
    assert report.scanned == tree.file.n_pages - 1
    assert len(tree.check()) == 600
    # everything freed is genuinely unreachable: reuse it all
    fill_tree(tree, range(1000, 1600))
    assert len(tree.check()) == 1200


def test_gc_after_crash_recovers_leaked_pages(recoverable_kind):
    """Orphans created by crash repairs (abandoned split halves, stale
    dual-path pages) are exactly what the paper's garbage collector is
    for."""
    cls = TREE_CLASSES[recoverable_kind]
    leaked_total = 0
    for seed in range(12):
        engine = StorageEngine.create(page_size=512, seed=seed)
        tree = cls.create(engine, "ix")
        engine.crash_policy = RandomSubsetCrash(p=0.3, seed=seed + 1)
        committed, pending = set(), []
        crashed = False
        i = 0
        while i < 300 and not crashed:
            tree.insert(i, tid_for(i))
            pending.append(i)
            i += 1
            if i % 25 == 0:
                try:
                    engine.sync()
                    committed.update(pending)
                    pending = []
                except CrashError:
                    crashed = True
        if not crashed:
            continue
        engine2 = StorageEngine.reopen_after_crash(engine)
        tree2 = cls.open(engine2, "ix")
        # touch the tree so lazy repairs run
        for key in committed:
            assert tree2.lookup(key) is not None
        report = collect_garbage(tree2)
        leaked_total += report.leaked
        # the tree is fully intact after collection
        assert {int.from_bytes(k, "big") for k, _ in
                tree2.check(strict_tokens=False,
                            require_peer_chain=False)} >= committed
        # and reuses the collected pages
        for key in range(1000, 1050):
            tree2.insert(key, tid_for(key))
        engine2.sync()
    assert leaked_total > 0  # crashes really do leak, GC really recovers


def test_gc_records_key_ranges_for_shadow_reuse(engine):
    tree = TREE_CLASSES["shadow"].create(engine, "ix")
    fill_tree(tree, range(400), sync_every=400)
    collect_garbage(tree)
    entries = tree.file.freelist.entries()
    assert entries, "expected some collected pages"
    assert any(e.key_range is not None for e in entries)


def test_gc_without_sync_first(tree):
    fill_tree(tree, range(200))
    report = collect_garbage(tree, sync_first=False)
    assert report.reachable
    assert len(tree.check()) == 200
