"""Basic tree behaviour, parametrized over all four index kinds."""

import pytest

from repro import TID, TREE_CLASSES, DuplicateKeyError, KeyNotFoundError
from repro.workload import random_permutation

from ..conftest import fill_tree, tid_for


def test_empty_tree_lookups(tree):
    assert tree.lookup(5) is None
    assert 5 not in tree
    assert len(tree) == 0
    assert tree.items() == []
    assert tree.check() == []


def test_single_insert_lookup(tree):
    tree.insert(7, TID(2, 3))
    assert tree.lookup(7) == TID(2, 3)
    assert 7 in tree
    assert len(tree) == 1
    assert tree.height == 1


def test_duplicate_insert_rejected(tree):
    tree.insert(7, TID(1, 1))
    with pytest.raises(DuplicateKeyError):
        tree.insert(7, TID(1, 2))


def test_ascending_bulk_and_height_growth(tree):
    fill_tree(tree, range(600))
    assert len(tree.check()) == 600
    assert tree.height >= 2
    for probe in (0, 1, 299, 598, 599):
        assert tree.lookup(probe) == tid_for(probe)
    assert tree.lookup(600) is None


def test_descending_bulk(tree):
    fill_tree(tree, range(599, -1, -1))
    pairs = tree.check()
    assert len(pairs) == 600
    assert tree.lookup(0) == tid_for(0)
    assert tree.lookup(599) == tid_for(599)


def test_random_bulk(tree):
    keys = random_permutation(600, seed=3)
    fill_tree(tree, keys)
    assert len(tree.check()) == 600
    for probe in keys[::37]:
        assert tree.lookup(probe) == tid_for(probe)


def test_range_scan_full_and_bounded(tree):
    fill_tree(tree, range(300))
    values = [v for v, _ in tree.range_scan()]
    assert values == list(range(300))
    sub = [v for v, _ in tree.range_scan(50, 60)]
    assert sub == list(range(50, 60))
    assert [v for v, _ in tree.range_scan(295)] == list(range(295, 300))
    assert [v for v, _ in tree.range_scan(hi=5)] == [0, 1, 2, 3, 4]
    assert [v for v, _ in tree.range_scan(1000, 2000)] == []


def test_scan_tids_match_inserts(tree):
    fill_tree(tree, range(200))
    for value, tid in tree.range_scan():
        assert tid == tid_for(value)


def test_delete_missing_key_raises(tree):
    with pytest.raises(KeyNotFoundError):
        tree.delete(1)
    fill_tree(tree, range(10))
    with pytest.raises(KeyNotFoundError):
        tree.delete(99)


def test_delete_then_lookup_misses(tree):
    fill_tree(tree, range(100))
    tree.delete(50)
    assert tree.lookup(50) is None
    assert len(tree.check()) == 99
    tree.insert(50, TID(9, 9))
    assert tree.lookup(50) == TID(9, 9)


def test_interleaved_insert_delete(tree):
    alive = set()
    for i in range(400):
        tree.insert(i, tid_for(i))
        alive.add(i)
        if i % 3 == 0 and i > 10:
            victim = i - 10
            tree.delete(victim)
            alive.remove(victim)
        if i % 64 == 0:
            tree.engine.sync()
    tree.engine.sync()
    pairs = tree.check()
    assert {int.from_bytes(k, "big") for k, _ in pairs} == alive


def test_splits_update_stats(tree):
    fill_tree(tree, range(600))
    assert tree.stats_splits > 0
    assert tree.stats_root_splits >= 1


def test_reopen_after_clean_shutdown(engine, tree_kind):
    cls = TREE_CLASSES[tree_kind]
    tree = cls.create(engine, "ix", codec="uint32")
    fill_tree(tree, range(300))
    tree.close_clean()
    engine.shutdown()

    from repro import StorageEngine
    engine2 = StorageEngine.reopen(engine)
    tree2 = cls.open(engine2, "ix")
    assert len(tree2.check()) == 300
    assert tree2.lookup(123) == tid_for(123)
    tree2.insert(1000, TID(1, 1))
    assert tree2.lookup(1000) == TID(1, 1)


def test_open_wrong_kind_rejected(engine):
    TREE_CLASSES["shadow"].create(engine, "ix")
    from repro.errors import TreeError
    with pytest.raises(TreeError):
        TREE_CLASSES["reorg"].open(engine, "ix")


def test_codec_integration_int64(engine, tree_kind):
    tree = TREE_CLASSES[tree_kind].create(engine, "ix", codec="int64")
    for value in (-1000, -1, 0, 1, 10**12):
        tree.insert(value, TID(1, 0))
    assert [v for v, _ in tree.range_scan()] == [-1000, -1, 0, 1, 10**12]


def test_codec_integration_str(engine, tree_kind):
    tree = TREE_CLASSES[tree_kind].create(engine, "ix", codec="str")
    words = ["pear", "apple", "fig", "banana"]
    for i, word in enumerate(words):
        tree.insert(word, TID(1, i))
    assert [v for v, _ in tree.range_scan()] == sorted(words)
    assert tree.lookup("fig") == TID(1, 2)
