"""Shadow-split semantics — the Figure 1 structure and split steps 1-5."""

import pytest

from repro import TID, ShadowBLinkTree, StorageEngine
from repro.core.nodeview import NodeView
from repro.storage.sync import tokens_match

from ..conftest import fill_tree, tid_for

PAGE = 512


@pytest.fixture
def engine():
    return StorageEngine.create(page_size=PAGE, seed=7)


@pytest.fixture
def tree(engine):
    return ShadowBLinkTree.create(engine, "ix", codec="uint32")


def first_split_state(tree):
    """Insert until exactly one leaf split has happened; return the parent
    (new root) view, pinned via a fresh read."""
    i = 0
    while tree.stats_splits == 0:
        tree.insert(i, tid_for(i))
        i += 1
    root_no = tree._root_page()
    buf = tree.file.pin(root_no)
    return root_no, buf, NodeView(buf.data, PAGE), i


def test_split_produces_triples_with_prev(tree):
    """Figure 1: after a split the parent holds <key, child, prev> triples
    and both prevs name the pre-split page."""
    root_no, buf, view, _ = first_split_state(tree)
    try:
        assert not view.is_leaf
        assert view.n_keys == 2
        assert view.shadow_items
        prev0, prev1 = view.prev_at(0), view.prev_at(1)
        child0, child1 = view.child_at(0), view.child_at(1)
        assert child0 != child1
        # the original page was never synced (split happened inside the
        # first window), so step (3) applies: prev comes from K1's prev,
        # which for a first root split is the meta prev_root (page 0 = none)
        assert prev0 == prev1
    finally:
        tree.file.unpin(buf)


def test_split_after_sync_uses_old_page_as_prev(tree):
    """Step (2): if P is durable, both K1 and K2 point their prevs at P and
    P goes to the deferred freelist."""
    # grow until a root exists and things are synced
    fill_tree(tree, range(120), sync_every=30)
    root_no = tree._root_page()
    rbuf = tree.file.pin(root_no)
    try:
        rview = NodeView(rbuf.data, PAGE)
        # the rightmost child (next ascending split target) and its slot
        slot = rview.n_keys - 1
        old_child = rview.child_at(slot)
    finally:
        tree.file.unpin(rbuf)
    pending_before = tree.file.freelist.pending
    splits_before = tree.stats_splits

    i = 120
    while tree.stats_splits == splits_before:
        tree.insert(i, tid_for(i))
        i += 1

    rbuf = tree.file.pin(root_no)
    try:
        rview = NodeView(rbuf.data, PAGE)
        # K1 (same slot) and the new K2 both shadow the old child
        assert rview.prev_at(slot) == old_child
        assert rview.prev_at(slot + 1) == old_child
        assert rview.child_at(slot) != old_child
        assert rview.child_at(slot + 1) != old_child
        # P is awaiting the next sync before it can be recycled
        assert tree.file.freelist.pending > pending_before
    finally:
        tree.file.unpin(rbuf)


def test_double_split_same_window_reuses_prev(tree):
    """Step (3): two splits at the same key range between syncs reuse the
    existing prev and recycle the intermediate page immediately."""
    fill_tree(tree, range(120), sync_every=30)
    recycled_before = tree.file.freelist.stats_recycled
    free_len_before = len(tree.file.freelist)
    splits_before = tree.stats_splits
    i = 120
    # two leaf splits without an intervening sync
    while tree.stats_splits < splits_before + 2:
        tree.insert(i, tid_for(i))
        i += 1
    # the second split's P (created by the first split, never synced) was
    # freed immediately
    assert (len(tree.file.freelist) > free_len_before
            or tree.file.freelist.stats_recycled > recycled_before)


def test_old_page_content_untouched_by_split(tree):
    """'During the split, the keys on P are neither modified nor
    overwritten' — P's durable image still holds every pre-split key."""
    fill_tree(tree, range(100), sync_every=100)
    root_no = tree._root_page()
    with tree.file.pinned(root_no) as rbuf:
        rview = NodeView(rbuf.data, PAGE)
        victim = rview.child_at(rview.n_keys - 1)
    durable_before = tree.file.disk.durable_image(victim)
    keys_before = list(NodeView(bytearray(durable_before), PAGE).keys())

    splits_before = tree.stats_splits
    i = 100
    while tree.stats_splits == splits_before:
        tree.insert(i, tid_for(i))
        i += 1
    durable_after = tree.file.disk.durable_image(victim)
    assert list(NodeView(bytearray(durable_after), PAGE).keys()) == \
        keys_before


def test_new_pages_carry_current_sync_token(tree):
    fill_tree(tree, range(100), sync_every=25)
    token = tree.engine.sync_state.token()
    splits_before = tree.stats_splits
    i = 100
    while tree.stats_splits == splits_before:
        tree.insert(i, tid_for(i))
        i += 1
    root_no = tree._root_page()
    rbuf = tree.file.pin(root_no)
    try:
        rview = NodeView(rbuf.data, PAGE)
        slot = rview.n_keys - 1
        for child_no in (rview.child_at(slot - 1), rview.child_at(slot)):
            cbuf = tree.file.pin(child_no)
            try:
                cview = NodeView(cbuf.data, PAGE)
                if tokens_match(cview.sync_token, token):
                    break
            finally:
                tree.file.unpin(cbuf)
        else:
            pytest.fail("no split product carries the current token")
    finally:
        tree.file.unpin(rbuf)


def test_root_split_moves_meta_pointer_with_prev(tree):
    from repro.core.meta import MetaView
    fill_tree(tree, range(60), sync_every=60)
    mbuf = tree.file.pin_meta()
    try:
        meta = MetaView(mbuf.data, PAGE)
        old_root = meta.root
    finally:
        tree.file.unpin(mbuf)
    root_splits_before = tree.stats_root_splits
    i = 60
    while tree.stats_root_splits == root_splits_before:
        tree.insert(i, tid_for(i))
        i += 1
    mbuf = tree.file.pin_meta()
    try:
        meta = MetaView(mbuf.data, PAGE)
        assert meta.root != old_root
        assert meta.prev_root == old_root
        assert tokens_match(meta.root_token,
                            tree.engine.sync_state.token())
    finally:
        tree.file.unpin(mbuf)


def test_all_levels_hold_shadow_items(tree):
    fill_tree(tree, range(2500), sync_every=200)
    assert tree.height >= 3
    root_no = tree._root_page()
    stack = [root_no]
    internal_seen = 0
    while stack:
        page_no = stack.pop()
        buf = tree.file.pin(page_no)
        try:
            view = NodeView(buf.data, PAGE)
            if not view.is_leaf:
                internal_seen += 1
                assert view.shadow_items
                stack.extend(view.child_at(i) for i in range(view.n_keys))
        finally:
            tree.file.unpin(buf)
    assert internal_seen >= 3


def test_advertisement_survives_capacity_pressure_reads():
    """Regression for the volatile-frame eviction bug: a shadow split
    leaves the pre-split page's ``new_page`` advertisement in the buffer
    only (never dirtied).  Under a tiny pool, read pressure used to evict
    that clean frame, silently discarding the advertisement before the
    sync that retires it.  Both the advertisement and every key must
    survive an arbitrary amount of reading before the next sync."""
    engine = StorageEngine.create(page_size=PAGE, seed=7, pool_capacity=4)
    tree = ShadowBLinkTree.create(engine, "ix", codec="uint32")
    keys = fill_tree(tree, range(64))
    # in-flight window: split without syncing, so the advertisement is
    # buffer-only and its frame is clean
    n = 64
    splits = tree.stats_splits
    while tree.stats_splits == splits:
        tree.insert(n, tid_for(n))
        keys.append(n)
        n += 1
    pool = tree.file.pool
    volatile = [p for p in pool.cached_pages() if pool.is_volatile(p)]
    assert volatile, "a buffer-only split must leave a volatile frame"
    # capacity pressure: scan + point reads far exceeding the pool size
    for _ in range(3):
        assert [v for v, _ in tree.range_scan()] == keys
        for k in keys:
            assert tree.lookup(k) is not None
    for p in volatile:
        assert p in pool.cached_pages(), "advertisement frame evicted"
        assert pool.is_volatile(p)
        buf = tree.file.pin(p)
        try:
            assert NodeView(buf.data, PAGE).new_page != 0
        finally:
            tree.file.unpin(buf)
    assert pool.stats_volatile_exemptions > 0
    # the sync that makes the split durable retires the advertisement
    engine.sync()
    assert not any(pool.is_volatile(p) for p in volatile)
