"""Index meta page: root shadowing and the freelist snapshot."""

# meta-page unit tests: raw MetaViews over bytearrays with literal
# tokens — no buffer pool, no SyncState (R012 is the per-path form
# of the same dirty discipline)
# lint: disable=R003,R004,R012

import pytest

from repro.core.meta import MetaView
from repro.errors import PageCorruptError
from repro.storage.freelist import FreeEntry

PAGE = 512


def fresh_meta(kind="shadow", codec="uint32"):
    view = MetaView(bytearray(PAGE), PAGE)
    view.init_meta(kind, codec)
    return view


def test_init_and_identity_fields():
    meta = fresh_meta("reorg", "int64")
    meta.check()
    assert meta.tree_kind == "reorg"
    assert meta.codec_name == "int64"
    assert meta.root == 0
    assert meta.prev_root == 0
    assert meta.root_token == 0


def test_set_root_records_prev_and_token():
    meta = fresh_meta()
    meta.set_root(5, 0, 10)
    assert (meta.root, meta.prev_root, meta.root_token) == (5, 0, 10)
    meta.set_root(9, 5, 12)
    assert (meta.root, meta.prev_root, meta.root_token) == (9, 5, 12)


def test_height_independent_of_root():
    meta = fresh_meta()
    meta.set_root(5, 0, 10)
    meta.height = 3
    assert meta.height == 3
    assert meta.root == 5
    meta.set_root(6, 5, 11)
    assert meta.height == 3


def test_check_rejects_non_meta_page():
    view = MetaView(bytearray(PAGE), PAGE)
    with pytest.raises(PageCorruptError):
        view.check()


def test_freelist_snapshot_roundtrip():
    meta = fresh_meta()
    entries = [
        FreeEntry(3, (b"\x01", b"\x02")),
        FreeEntry(4, (b"", None)),          # unbounded range
        FreeEntry(5, (b"abc", b"abd")),
    ]
    assert meta.store_freelist(entries) == 3
    loaded = meta.load_freelist()
    assert [e.page_no for e in loaded] == [3, 4, 5]
    assert loaded[0].key_range == (b"\x01", b"\x02")
    assert loaded[1].key_range == (b"", None)
    assert loaded[2].key_range == (b"abc", b"abd")


def test_freelist_snapshot_truncates_to_page_capacity():
    meta = fresh_meta()
    entries = [FreeEntry(i, (bytes(40), bytes(40) + b"\x01"))
               for i in range(1, 100)]
    stored = meta.store_freelist(entries)
    assert 0 < stored < 99
    assert len(meta.load_freelist()) == stored


def test_erase_freelist():
    meta = fresh_meta()
    meta.store_freelist([FreeEntry(3, None)])
    meta.erase_freelist()
    assert meta.load_freelist() == []
