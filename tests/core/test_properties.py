"""Property-based tests: random operation sequences against a model.

Hypothesis drives each tree kind through arbitrary insert/delete/lookup
sequences and checks the index always agrees with a plain dict, the scan
is always sorted, and the structural validator stays green.
"""

# the model checker pokes raw pages to cross-check the validator
# (R012 is the per-path form of the same dirty discipline)
# lint: disable=R003,R012

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    DuplicateKeyError,
    KeyNotFoundError,
    StorageEngine,
    TID,
    TREE_CLASSES,
)
from repro.core.keys import KeyBounds, UInt32Codec, make_unique

KEYS = st.integers(0, 400)
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), KEYS),
        st.tuples(st.just("delete"), KEYS),
        st.tuples(st.just("lookup"), KEYS),
        st.tuples(st.just("sync"), st.just(0)),
    ),
    max_size=120,
)


def run_ops(kind, ops, page_size=256):
    engine = StorageEngine.create(page_size=page_size, seed=99)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    model = {}
    for op, key in ops:
        if op == "insert":
            tid = TID(1, key % 100)
            if key in model:
                with pytest.raises(DuplicateKeyError):
                    tree.insert(key, tid)
            else:
                tree.insert(key, tid)
                model[key] = tid
        elif op == "delete":
            if key in model:
                tree.delete(key)
                del model[key]
            else:
                with pytest.raises(KeyNotFoundError):
                    tree.delete(key)
        elif op == "lookup":
            assert tree.lookup(key) == model.get(key)
        else:
            engine.sync()
    engine.sync()
    return tree, model


@pytest.mark.parametrize("kind", ["normal", "shadow", "reorg", "hybrid"])
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(ops=OPS)
def test_tree_matches_dict_model(kind, ops):
    tree, model = run_ops(kind, ops)
    pairs = tree.check()
    assert {int.from_bytes(k, "big"): t for k, t in pairs} == model
    values = [v for v, _ in tree.range_scan()]
    assert values == sorted(model)


@settings(max_examples=30, deadline=None)
@given(ops=OPS, lo=KEYS, hi=KEYS)
def test_range_scan_matches_model_slice(ops, lo, hi):
    tree, model = run_ops("shadow", ops)
    values = [v for v, _ in tree.range_scan(lo, hi)]
    assert values == sorted(k for k in model if lo <= k < hi)


@settings(max_examples=30, deadline=None)
@given(keys=st.lists(st.integers(0, 10**6), unique=True, max_size=150))
def test_insert_any_order_yields_sorted_scan(keys):
    engine = StorageEngine.create(page_size=256, seed=5)
    tree = TREE_CLASSES["reorg"].create(engine, "ix", codec="uint32")
    for key in keys:
        tree.insert(key, TID(1, 0))
    engine.sync()
    assert [v for v, _ in tree.range_scan()] == sorted(keys)


@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.integers(0, 50), min_size=1, max_size=60),
       base=st.integers(0, 1000))
def test_duplicate_values_via_make_unique(values, base):
    """Section 2's duplicate rewrite preserves per-value grouping."""
    codec = UInt32Codec()
    engine = StorageEngine.create(page_size=256, seed=5)
    tree = TREE_CLASSES["shadow"].create(engine, "ix", codec="bytes")
    for oid, value in enumerate(values):
        tree.insert(make_unique(codec.encode(value), base + oid),
                    TID(1, oid % 100))
    engine.sync()
    scanned = [v for v, _ in tree.range_scan()]
    assert len(scanned) == len(values)
    decoded = [codec.decode(v[:4]) for v in scanned]
    assert decoded == sorted(values)


@settings(max_examples=60, deadline=None)
@given(lo=st.binary(max_size=4), hi=st.binary(max_size=4),
       key=st.binary(max_size=4))
def test_keybounds_contains_is_consistent(lo, hi, key):
    if hi < lo:
        lo, hi = hi, lo
    bounds = KeyBounds(lo, hi)
    inside = bounds.contains(key)
    assert inside == (lo <= key < hi)


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_intra_page_insert_images_always_repairable(data):
    """Random mid-insert byte images are always either clean or carry a
    detectable duplicate line-table entry whose repair restores the
    pre-insert key set (Sections 3.3/3.3.2)."""
    from repro.constants import PAGE_LEAF
    from repro.core import items as I
    from repro.core.nodeview import NodeView

    n = data.draw(st.integers(2, 25))
    step = data.draw(st.integers(2, 5))
    view = NodeView(bytearray(512), 512)
    view.init_page(PAGE_LEAF, level=0, sync_token=1)
    existing = list(range(0, n * step, step))
    for i, key in enumerate(existing):
        view.insert_item(i, I.pack_leaf_item(key.to_bytes(4, "big"),
                                             TID(1, i)))
    new_key = data.draw(st.integers(0, n * step + 1).filter(
        lambda k: k not in existing))
    images = []
    slot, _ = view.search(new_key.to_bytes(4, "big"))
    view.insert_item(slot, I.pack_leaf_item(new_key.to_bytes(4, "big"),
                                            TID(1, 99)),
                     step_hook=lambda _l: images.append(bytes(view.buf)))
    pick = data.draw(st.integers(0, len(images) - 1))
    snap = NodeView(bytearray(images[pick]), 512)
    snap.repair_intra_page()
    assert snap.find_intra_page_inconsistency() is None
    recovered = [int.from_bytes(k, "big") for k in snap.keys()]
    assert recovered == existing
