"""The hybrid tree: shadow leaves under reorg internals."""

import pytest

from repro import HybridBLinkTree, StorageEngine
from repro.core.nodeview import NodeView

from ..conftest import fill_tree, tid_for

PAGE = 512


@pytest.fixture
def engine():
    return StorageEngine.create(page_size=PAGE, seed=7)


@pytest.fixture
def tree(engine):
    return HybridBLinkTree.create(engine, "ix", codec="uint32")


def test_item_layout_per_level(tree):
    """Level 1 pages carry prevPtr triples (they parent shadow-split
    leaves); level >= 2 pages carry plain pairs."""
    fill_tree(tree, range(2500), sync_every=100)
    assert tree.height >= 3
    seen_levels = {}
    stack = [tree._root_page()]
    while stack:
        page_no = stack.pop()
        buf = tree.file.pin(page_no)
        try:
            view = NodeView(buf.data, PAGE)
            seen_levels.setdefault(view.level, view.shadow_items)
            assert view.shadow_items == (view.level == 1)
            if not view.is_leaf:
                stack.extend(view.child_at(i) for i in range(view.n_keys))
        finally:
            tree.file.unpin(buf)
    assert seen_levels[0] is False
    assert seen_levels[1] is True
    assert seen_levels[max(seen_levels)] is False


def test_leaf_splits_are_shadow_style(tree):
    """A leaf split allocates two fresh pages (Pa and Pb) rather than
    remapping, and the parent entry gains a prevPtr to the old leaf."""
    fill_tree(tree, range(60), sync_every=60)
    root_no = tree._root_page()
    rbuf = tree.file.pin(root_no)
    try:
        rview = NodeView(rbuf.data, PAGE)
        root_is_leaf = rview.is_leaf
    finally:
        tree.file.unpin(rbuf)
    if root_is_leaf:
        pytest.skip("tree still a single leaf")

    rbuf = tree.file.pin(root_no)
    try:
        rview = NodeView(rbuf.data, PAGE)
        slot = rview.n_keys - 1
        old_child = rview.child_at(slot)
    finally:
        tree.file.unpin(rbuf)
    splits_before = tree.stats_splits
    i = 60
    while tree.stats_splits == splits_before:
        tree.insert(i, tid_for(i))
        i += 1
    rbuf = tree.file.pin(root_no)
    try:
        rview = NodeView(rbuf.data, PAGE)
        if rview.level == 1:  # root is the leaves' parent
            assert rview.prev_at(slot) == old_child
            assert rview.child_at(slot) != old_child
    finally:
        tree.file.unpin(rbuf)


def test_internal_splits_are_reorg_style(tree):
    """An internal (level-1) split leaves a backup on the reorganized
    page."""
    fill_tree(tree, range(4000), sync_every=4000)
    found_internal_backup = False
    for page_no in range(1, tree.file.n_pages):
        buf = tree.file.pin(page_no)
        try:
            view = NodeView(buf.data, PAGE)
            if not view.is_leaf and view.prev_n_keys:
                found_internal_backup = True
            if view.is_leaf:
                # leaves never carry backups in the hybrid tree
                assert view.prev_n_keys == 0
        finally:
            tree.file.unpin(buf)
    assert found_internal_backup


def test_hybrid_functional_parity(tree):
    keys = fill_tree(tree, range(1500), sync_every=128)
    pairs = tree.check()
    assert len(pairs) == 1500
    for probe in range(0, 1500, 131):
        assert tree.lookup(probe) == tid_for(probe)
    for probe in range(0, 1500, 7):
        tree.delete(probe)
    tree.engine.sync()
    remaining = 1500 - len(range(0, 1500, 7))
    assert len(tree.check()) == remaining
