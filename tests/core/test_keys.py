"""Key codecs, TIDs, key bounds, duplicate handling."""

import pytest
from hypothesis import given, strategies as st

from repro.core.keys import (
    CODECS,
    FULL_BOUNDS,
    MIN_KEY,
    TID,
    Int64Codec,
    KeyBounds,
    StringCodec,
    UInt32Codec,
    make_unique,
    split_unique,
)


# -- codecs are order-preserving ------------------------------------------

@given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
def test_uint32_order_preserving(a, b):
    codec = UInt32Codec()
    assert (codec.encode(a) < codec.encode(b)) == (a < b)


@given(st.integers(-2**63, 2**63 - 1), st.integers(-2**63, 2**63 - 1))
def test_int64_order_preserving(a, b):
    codec = Int64Codec()
    assert (codec.encode(a) < codec.encode(b)) == (a < b)


@given(st.integers(-2**63, 2**63 - 1))
def test_int64_roundtrip(value):
    codec = Int64Codec()
    assert codec.decode(codec.encode(value)) == value


@given(st.text(max_size=50))
def test_string_roundtrip(value):
    codec = StringCodec()
    assert codec.decode(codec.encode(value)) == value


def test_bytes_codec_rejects_non_bytes():
    with pytest.raises(TypeError):
        CODECS["bytes"].encode(42)


def test_codec_registry_names():
    assert set(CODECS) == {"bytes", "uint32", "int64", "str"}
    for name, codec in CODECS.items():
        assert codec.name == name


# -- TIDs -----------------------------------------------------------------

def test_tid_pack_unpack():
    tid = TID(0x12345678, 0x9ABC)
    assert TID.unpack(tid.pack()) == tid


def test_tid_ordering():
    assert TID(1, 5) < TID(2, 0) < TID(2, 1)


# -- duplicate-key rewrite (Section 2) -------------------------------------

def test_make_unique_roundtrip():
    key = UInt32Codec().encode(7)
    composite = make_unique(key, 42)
    value, oid = split_unique(composite)
    assert value == key
    assert oid == 42


def test_make_unique_sorts_by_value_then_oid():
    codec = UInt32Codec()
    a = make_unique(codec.encode(5), 100)
    b = make_unique(codec.encode(5), 200)
    c = make_unique(codec.encode(6), 0)
    assert a < b < c


def test_split_unique_rejects_short_input():
    with pytest.raises(ValueError):
        split_unique(b"short")


# -- bounds ---------------------------------------------------------------

def test_full_bounds_contains_everything():
    assert FULL_BOUNDS.contains(MIN_KEY)
    assert FULL_BOUNDS.contains(b"\xff" * 8)


def test_bounds_half_open():
    bounds = KeyBounds(b"\x10", b"\x20")
    assert bounds.contains(b"\x10")
    assert not bounds.contains(b"\x20")
    assert not bounds.contains(b"\x0f")


def test_child_bounds_clip_to_parent():
    parent = KeyBounds(b"\x10", b"\x30")
    child = parent.child(b"\x05", b"\x40")
    assert child == KeyBounds(b"\x10", b"\x30")
    child2 = parent.child(b"\x15", b"\x25")
    assert child2 == KeyBounds(b"\x15", b"\x25")


def test_child_bounds_infinite_hi():
    parent = KeyBounds(b"\x10", None)
    assert parent.child(b"\x15", None) == KeyBounds(b"\x15", None)
    assert parent.child(b"\x15", b"\x20") == KeyBounds(b"\x15", b"\x20")


def test_as_range():
    assert KeyBounds(b"a", b"b").as_range() == (b"a", b"b")
