"""Concurrency control: latch protocol, split lock, threaded smoke tests
(paper Section 3.6)."""

# latch-primitive unit tests: bare acquire/release sequences (no
# try/finally) and blocking calls under latches are the protocol
# shapes being tested, not production descent code (R014 is the
# path-sensitive form of the same latch discipline)
# lint: disable=R008,R009,R014

import threading

import pytest

from repro import StorageEngine, TID, TREE_CLASSES
from repro.core.concurrency import (
    ConcurrentTree,
    LatchManager,
    LatchProtocolError,
    SplitLock,
)

from ..conftest import tid_for


# -- latch manager -----------------------------------------------------------

def test_read_latches_shared():
    latches = LatchManager()
    latches.acquire_read(1)
    latches.release(1)
    # two readers from different threads share
    acquired = []

    def reader():
        latches.acquire_read(1)
        acquired.append(True)
        latches.release(1)

    latches.acquire_read(1)
    t = threading.Thread(target=reader)
    t.start()
    t.join(timeout=2)
    assert acquired == [True]
    latches.release(1)


def test_writer_excludes_reader():
    latches = LatchManager()
    latches.acquire_write(1)
    progressed = []

    def reader():
        latches.acquire_read(1)
        progressed.append(True)
        latches.release(1)

    t = threading.Thread(target=reader)
    t.start()
    t.join(timeout=0.1)
    assert progressed == []           # blocked behind the writer
    latches.release(1)
    t.join(timeout=2)
    assert progressed == [True]


def test_release_unheld_rejected():
    latches = LatchManager()
    with pytest.raises(LatchProtocolError):
        latches.release(5)


def test_descent_no_coupling_enforced():
    """Lehman-Yao descent holds at most one latch: acquiring a second with
    max_held=1 is a protocol violation."""
    latches = LatchManager()
    latches.acquire_read(1, max_held=1)
    with pytest.raises(LatchProtocolError):
        latches.acquire_read(2, max_held=1)
    latches.release(1)
    latches.acquire_read(2, max_held=1)
    latches.release(2)


def test_ascending_coupling_allows_two():
    latches = LatchManager()
    latches.acquire_write(1, max_held=2)
    latches.acquire_write(2, max_held=2)
    with pytest.raises(LatchProtocolError):
        latches.acquire_write(3, max_held=2)
    latches.release_all()
    assert latches.held_by_me() == []


# -- split lock -----------------------------------------------------------------

def test_split_lock_conflicts_only_with_split_lock():
    lock = SplitLock()
    latches = LatchManager()
    lock.acquire(latches)
    # readers/writers of other pages proceed while the split lock is held
    latches.acquire_read(9)
    latches.release(9)
    lock.release()


def test_split_lock_before_write_latch_ordering():
    """'processes acquire the split lock before the write lock' — taking
    it the other way round is a protocol violation."""
    lock = SplitLock()
    latches = LatchManager()
    latches.acquire_write(1)
    with pytest.raises(LatchProtocolError):
        lock.acquire(latches)
    latches.release(1)
    lock.acquire(latches)     # correct order
    latches.acquire_write(1)
    latches.release(1)
    lock.release()


def test_split_lock_not_reentrant():
    lock = SplitLock()
    with lock:
        with pytest.raises(LatchProtocolError):
            lock.acquire()


def test_split_lock_release_by_non_owner_rejected():
    lock = SplitLock()
    lock.acquire()
    errors = []

    def interloper():
        try:
            lock.release()
        except LatchProtocolError as exc:
            errors.append(exc)

    t = threading.Thread(target=interloper)
    t.start()
    t.join(timeout=2)
    assert errors
    lock.release()


def test_split_locks_serialize_each_other():
    lock = SplitLock()
    order = []

    def worker(name):
        lock.acquire()
        order.append((name, "in"))
        order.append((name, "out"))
        lock.release()

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=5)
    # critical sections never interleave
    for i in range(0, len(order), 2):
        assert order[i][0] == order[i + 1][0]
    assert lock.stats_acquisitions == 4


# -- threaded trees -----------------------------------------------------------

@pytest.mark.parametrize("kind", ["normal", "shadow", "reorg", "hybrid"])
def test_concurrent_readers_and_writer(kind):
    engine = StorageEngine.create(page_size=512, seed=5)
    inner = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    tree = ConcurrentTree(inner)
    for i in range(0, 1000, 2):
        tree.insert(i, tid_for(i))
    engine.sync()

    stop = threading.Event()
    read_errors = []

    def reader():
        probe = 0
        while not stop.is_set():
            found = tree.lookup(probe)
            if probe % 2 == 0 and probe < 1000 and found is None:
                read_errors.append(probe)
                return
            probe = (probe + 2) % 1000

    readers = [threading.Thread(target=reader) for _ in range(3)]
    for t in readers:
        t.start()
    # writer inserts the odd keys while readers hammer the evens
    for i in range(1, 1000, 2):
        tree.insert(i, tid_for(i))
    stop.set()
    for t in readers:
        t.join(timeout=5)
    assert read_errors == []
    engine.sync()
    assert len(inner.check()) == 1000


def test_concurrent_wrapper_scan_and_delete():
    engine = StorageEngine.create(page_size=512, seed=5)
    inner = TREE_CLASSES["shadow"].create(engine, "ix", codec="uint32")
    tree = ConcurrentTree(inner)
    for i in range(500):
        tree.insert(i, tid_for(i))
    engine.sync()
    results = []

    def scanner():
        results.append(tree.range_scan())

    t = threading.Thread(target=scanner)
    t.start()
    for i in range(0, 500, 5):
        tree.delete(i)
    t.join(timeout=5)
    assert results and len(results[0]) in range(400, 501)
    vals = [v for v, _ in results[0]]
    assert vals == sorted(vals)
