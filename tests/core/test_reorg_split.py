"""Page-reorganization split semantics — Figure 2 and the reclamation
check's three token cases."""

import pytest

from repro import TID, ReorgBLinkTree, StorageEngine
from repro.core import items as I
from repro.core.nodeview import NodeView
from repro.storage.sync import tokens_match
from repro.workload import random_permutation

from ..conftest import fill_tree, tid_for

PAGE = 512


@pytest.fixture
def engine():
    return StorageEngine.create(page_size=PAGE, seed=7)


@pytest.fixture
def tree(engine):
    return ReorgBLinkTree.create(engine, "ix", codec="uint32")


def split_once(tree, start=0):
    i = start
    splits = tree.stats_splits
    while tree.stats_splits == splits:
        tree.insert(i, tid_for(i))
        i += 1
    return i


def find_backed_up_leaf(tree):
    for page_no in range(1, tree.file.n_pages):
        buf = tree.file.pin(page_no)
        try:
            view = NodeView(buf.data, PAGE)
            if view.is_leaf and view.prev_n_keys:
                return page_no
        finally:
            tree.file.unpin(buf)
    return None


def test_figure2_structure_after_split(tree):
    """After the split: Pa (remapped to P's slot) holds the live half plus
    a backup of Pb's half; Pb is fresh with prevNKeys zero; Pa.newPage
    names Pb."""
    split_once(tree)
    pa_no = find_backed_up_leaf(tree)
    assert pa_no is not None
    buf = tree.file.pin(pa_no)
    try:
        pa = NodeView(buf.data, PAGE)
        assert pa.prev_n_keys == pa.n_keys + pa.backup_count
        assert pa.new_page != 0
        assert pa.live_is_low          # ascending: the new key went high
        pb_no = pa.new_page
        backup_keys = [I.item_key(b, 0) for b in pa.backup_items()]
        pbuf = tree.file.pin(pb_no)
        try:
            pb = NodeView(pbuf.data, PAGE)
            assert pb.prev_n_keys == 0
            # Pb holds the backup half plus the key that caused the split
            pb_keys = list(pb.keys())
            assert pb_keys[:len(backup_keys)] == backup_keys
            assert len(pb_keys) == len(backup_keys) + 1
            pb_token = pb.sync_token
        finally:
            tree.file.unpin(pbuf)
        assert tokens_match(pa.sync_token, pb_token)
        assert tokens_match(pa.sync_token,
                            tree.engine.sync_state.token())
    finally:
        tree.file.unpin(buf)


def test_pa_remapped_onto_p_slot(tree):
    """Step (5): the reorganized page takes the original page's number —
    no new page number appears for the live half."""
    end = split_once(tree)          # first split also grows the root
    tree.engine.sync()
    pages_before = tree.file.n_pages
    splits_before = tree.stats_splits
    i = end
    while tree.stats_splits == splits_before:   # non-root leaf split
        tree.insert(i, tid_for(i))
        i += 1
    # exactly one page was allocated (Pb); Pa reused P's slot
    assert tree.file.n_pages == pages_before + 1


def test_reclaim_case1_blocks_for_sync(tree):
    """Insert into a page whose backup is from the current window: the
    update must force a sync first (the paper's 'block for a sync')."""
    end = split_once(tree)
    pa_no = find_backed_up_leaf(tree)
    buf = tree.file.pin(pa_no)
    try:
        pa = NodeView(buf.data, PAGE)
        low_key = int.from_bytes(pa.min_key(), "big")
    finally:
        tree.file.unpin(buf)
    syncs_before = tree.engine.stats_syncs
    assert tree.stats_sync_stalls == 0
    # deleting a key on Pa triggers the reclamation check
    tree.delete(low_key)
    assert tree.stats_sync_stalls == 1
    assert tree.engine.stats_syncs == syncs_before + 1
    buf = tree.file.pin(pa_no)
    try:
        pa = NodeView(buf.data, PAGE)
        assert pa.prev_n_keys == 0
        assert pa.new_page == 0
    finally:
        tree.file.unpin(buf)


def test_reclaim_case2_after_sync_is_free(tree):
    """After an ordinary sync the backup is reclaimed without blocking."""
    split_once(tree)
    tree.engine.sync()
    pa_no = find_backed_up_leaf(tree)
    with tree.file.pinned(pa_no) as buf:
        low_key = int.from_bytes(NodeView(buf.data, PAGE).min_key(), "big")
    syncs_before = tree.engine.stats_syncs
    tree.delete(low_key)
    assert tree.stats_sync_stalls == 0
    assert tree.engine.stats_syncs == syncs_before
    with tree.file.pinned(pa_no) as buf:
        assert NodeView(buf.data, PAGE).prev_n_keys == 0


def test_descending_split_puts_new_key_in_low_half(engine):
    """'Pb is the page that will contain the new key ... Pa may be either
    the left or the right child': descending inserts make the live half
    the high half."""
    tree = ReorgBLinkTree.create(engine, "ix", codec="uint32")
    i = 10_000
    splits = tree.stats_splits
    while tree.stats_splits == splits:
        tree.insert(i, tid_for(i))
        i -= 1
    pa_no = find_backed_up_leaf(tree)
    buf = tree.file.pin(pa_no)
    try:
        pa = NodeView(buf.data, PAGE)
        assert not pa.live_is_low
        backup_keys = [I.item_key(b, 0) for b in pa.backup_items()]
        assert backup_keys[-1] < pa.min_key()
    finally:
        tree.file.unpin(buf)


def test_no_prev_ptrs_anywhere(tree):
    fill_tree(tree, range(2500), sync_every=100)
    assert tree.height >= 3
    stack = [tree._root_page()]
    while stack:
        page_no = stack.pop()
        buf = tree.file.pin(page_no)
        try:
            view = NodeView(buf.data, PAGE)
            assert not view.shadow_items
            if not view.is_leaf:
                stack.extend(view.child_at(i) for i in range(view.n_keys))
        finally:
            tree.file.unpin(buf)


def test_random_workload_forces_stalls(tree):
    """The paper: page reorganization 'performs poorly when the same index
    page splits many times during the same transaction' — random inserts
    with rare syncs hit reclamation case 1 repeatedly."""
    for key in random_permutation(800, seed=3):
        tree.insert(key, tid_for(key))
    assert tree.stats_sync_stalls > 0
    tree.engine.sync()
    assert len(tree.check()) == 800


def test_backup_space_reserved_at_insert_time(tree):
    """_page_can_fit keeps 24 bytes of headroom so a future split can
    always write its backup record."""
    fill_tree(tree, range(600), sync_every=50)
    # every page must retain at least the record's headroom or have no
    # backup pending
    for page_no in range(1, tree.file.n_pages):
        buf = tree.file.pin(page_no)
        try:
            view = NodeView(buf.data, PAGE)
            if view.is_leaf and view.prev_n_keys == 0:
                assert view.free_space() >= 0
        finally:
            tree.file.unpin(buf)
