"""The Section 5 analytic model and its validation against built trees."""

import pytest

from repro.constants import UNIX_FILE_SIZE_LIMIT
from repro.model import (
    FILL_FACTORS,
    PageModel,
    coincidence_fraction,
    file_pages,
    height_at_file_limit,
    height_table,
    keys_at_file_limit,
    max_keys_at_height,
    measure_tree,
    tree_height,
)
from repro.workload import ascending, random_permutation


def test_shadow_fanout_strictly_lower():
    normal = PageModel("normal", key_size=4)
    shadow = PageModel("shadow", key_size=4)
    assert shadow.internal_capacity() < normal.internal_capacity()
    assert shadow.leaf_capacity() == normal.leaf_capacity()


def test_fanout_shrinks_with_key_size():
    caps = [PageModel("normal", key_size=k).internal_capacity()
            for k in (4, 8, 16, 64)]
    assert caps == sorted(caps, reverse=True)


def test_prevptr_overhead_ratio_drops_for_large_keys():
    """'When index keys are large, fewer keys fit on a page and less
    space is lost to prevPtr overhead.'"""
    def overhead(key_size):
        normal = PageModel("normal", key_size=key_size)
        shadow = PageModel("shadow", key_size=key_size)
        return 1 - shadow.internal_capacity() / normal.internal_capacity()
    assert overhead(4) > overhead(16) > overhead(64)


def test_height_monotone_in_keys():
    model = PageModel("normal", key_size=4)
    heights = [tree_height(n, model)
               for n in (1, 100, 10_000, 10**6, 10**8)]
    assert heights == sorted(heights)
    assert tree_height(0, model) == 0
    assert tree_height(1, model) == 1


def test_max_keys_at_height_inverse_of_height():
    model = PageModel("shadow", key_size=8)
    for h in (1, 2, 3, 4):
        boundary = max_keys_at_height(h, model)
        assert tree_height(boundary, model) == h
        assert tree_height(boundary + 1, model) == h + 1


def test_paper_claim_four_byte_keys_under_five_levels():
    """'a B-link-tree of either type storing four-byte keys would exceed
    the 2 GByte maximum size of a UNIX file before it reached five
    levels' — worst-case insertion order (fill 0.5)."""
    for kind in ("normal", "shadow", "reorg"):
        model = PageModel(kind, key_size=4, fill_factor=0.5)
        assert height_at_file_limit(model) < 5


def test_paper_claim_heights_coincide_mostly():
    """'the heights of larger normal and shadow B-link-trees will coincide
    for most index sizes'."""
    for key_size in (4, 8, 16, 64):
        assert coincidence_fraction(key_size) > 0.9


def test_file_pages_accounting():
    model = PageModel("normal", key_size=4)
    assert file_pages(0, model) == 1          # just the meta page
    n = 100_000
    pages = file_pages(n, model)
    assert pages * model.page_size < UNIX_FILE_SIZE_LIMIT
    assert pages > n / model.leaf_capacity()


def test_keys_at_file_limit_boundary():
    model = PageModel("normal", key_size=4)
    n = keys_at_file_limit(model)
    assert file_pages(n, model) * model.page_size <= UNIX_FILE_SIZE_LIMIT
    assert file_pages(n + n // 100, model) * model.page_size \
        > UNIX_FILE_SIZE_LIMIT


def test_height_table_shape():
    rows = height_table([4, 64], [10_000, 10**7])
    assert len(rows) == 4
    for row in rows:
        assert row["normal"] <= row["shadow"] <= row["normal"] + 1


# -- model vs measured -------------------------------------------------------

@pytest.mark.parametrize("kind", ["normal", "shadow", "reorg", "hybrid"])
def test_model_matches_built_tree_ascending(kind):
    measured = measure_tree(kind, ascending(3000), page_size=1024)
    assert measured.n_keys == 3000
    assert abs(measured.height - measured.model_height) <= 1
    # ascending loads leave pages about half full
    assert 0.4 < measured.leaf_fill < 1.01


@pytest.mark.parametrize("kind", ["normal", "shadow"])
def test_model_matches_built_tree_random(kind):
    measured = measure_tree(kind, random_permutation(3000, seed=5),
                            page_size=1024)
    assert abs(measured.height - measured.model_height) <= 1
    # the classic ~ln 2 steady state
    assert 0.55 < measured.leaf_fill < 0.85


def test_fill_factor_constants():
    assert FILL_FACTORS["ascending"] == 0.5
    assert 0.65 < FILL_FACTORS["random"] < 0.72
    assert FILL_FACTORS["packed"] == 1.0


def test_measured_shadow_same_height_as_normal():
    normal = measure_tree("normal", ascending(4000), page_size=1024)
    shadow = measure_tree("shadow", ascending(4000), page_size=1024)
    assert shadow.height == normal.height
    assert shadow.leaf_pages == pytest.approx(normal.leaf_pages, rel=0.1)
