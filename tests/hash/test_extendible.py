"""Shadow-recoverable extendible hashing — the paper's generalization
claim, tested the same way as the trees."""

import pytest

from repro import (
    CrashError,
    CrashOnceKeepingPages,
    DuplicateKeyError,
    KeyNotFoundError,
    RandomSubsetCrash,
    StorageEngine,
    TID,
)
from repro.core.detect import Action, Kind
from repro.core.nodeview import NodeView
from repro.hash import ExtendibleHashIndex, hash_key
from repro.storage.sync import tokens_match

PAGE = 512


def tid_for(i):
    return TID(1 + (i >> 8), i & 0xFF)


@pytest.fixture
def engine():
    return StorageEngine.create(page_size=PAGE, seed=5)


@pytest.fixture
def index(engine):
    return ExtendibleHashIndex.create(engine, "h", codec="uint32")


# -- functional ------------------------------------------------------------

def test_empty_index(index):
    assert index.lookup(1) is None
    assert index.global_depth == 0
    assert index.check() == []


def test_insert_lookup_delete(index):
    index.insert(7, TID(1, 2))
    assert index.lookup(7) == TID(1, 2)
    assert 7 in index
    index.delete(7)
    assert index.lookup(7) is None
    with pytest.raises(KeyNotFoundError):
        index.delete(7)


def test_duplicate_rejected(index):
    index.insert(7, TID(1, 1))
    with pytest.raises(DuplicateKeyError):
        index.insert(7, TID(1, 2))


def test_growth_through_splits_and_doublings(index):
    for i in range(2000):
        index.insert(i, tid_for(i))
        if i % 128 == 127:
            index.engine.sync()
    index.engine.sync()
    assert index.global_depth >= 3
    assert index.stats_bucket_splits > 10
    assert index.stats_directory_doublings >= 3
    pairs = index.check()
    assert len(pairs) == 2000
    for probe in range(0, 2000, 97):
        assert index.lookup(probe) == tid_for(probe)
    assert index.lookup(5000) is None


def test_items_sorted_by_value(index):
    for i in (5, 1, 9, 3):
        index.insert(i, tid_for(i))
    assert [v for v, _ in index.items()] == [1, 3, 5, 9]


def test_bucket_prefix_invariant(index):
    """Every key hashes into the bucket whose prefix covers it — the
    detect-on-first-use predicate, verified exhaustively."""
    for i in range(1000):
        index.insert(i, tid_for(i))
    index.engine.sync()
    index.check()   # raises on any prefix violation


def test_reopen_after_clean_shutdown(engine, index):
    for i in range(300):
        index.insert(i, tid_for(i))
    engine.shutdown()
    engine2 = StorageEngine.reopen(engine)
    index2 = ExtendibleHashIndex.open(engine2, "h")
    assert index2.lookup(123) == tid_for(123)
    assert len(index2.check()) == 300


def test_hash_is_stable():
    assert hash_key(b"\x00\x00\x00\x07") == hash_key(b"\x00\x00\x00\x07")
    assert hash_key(b"a") != hash_key(b"b")


# -- crash recovery -----------------------------------------------------------


def build_crashed(seed, n=400, batch=25):
    engine = StorageEngine.create(page_size=PAGE, seed=seed)
    index = ExtendibleHashIndex.create(engine, "h", codec="uint32")
    engine.crash_policy = RandomSubsetCrash(p=0.25, seed=seed * 3 + 1)
    committed, pending, crashed = set(), [], False
    i = 0
    while i < n and not crashed:
        try:
            index.insert(i, tid_for(i))
            pending.append(i)
            i += 1
            if i % batch == 0:
                engine.sync()
                committed.update(pending)
                pending = []
        except CrashError:
            crashed = True
    return engine, committed, crashed


@pytest.mark.parametrize("seed", range(15))
def test_crash_campaign_never_loses_committed_keys(seed):
    engine, committed, crashed = build_crashed(seed)
    if not crashed:
        pytest.skip("no crash at this seed")
    engine2 = StorageEngine.reopen_after_crash(engine)
    index2 = ExtendibleHashIndex.open(engine2, "h")
    missing = [k for k in committed if index2.lookup(k) is None]
    assert not missing, sorted(missing)[:8]
    for key in range(5000, 5060):
        index2.insert(key, tid_for(key))
    engine2.sync()
    found = {int.from_bytes(k, "big") for k, _ in index2.check()}
    assert committed <= found


def test_lost_bucket_rebuilt_from_prev(engine, index):
    """The targeted split-crash case: directory durable, a new bucket
    lost — rebuilt from the prev bucket by re-hashing."""
    committed = set(range(64))
    for i in sorted(committed):
        index.insert(i, tid_for(i))
        if (i + 1) % 32 == 0:
            engine.sync()
    engine.sync()
    splits = index.stats_bucket_splits
    i = 64
    while index.stats_bucket_splits == splits:
        index.insert(i, tid_for(i))
        i += 1
    # find the new buckets of the in-flight split
    token = engine.sync_state.token()
    fresh = []
    for page_no in range(1, index.file.n_pages):
        with index.file.pinned(page_no) as buf:
            view = NodeView(buf.data, PAGE)
            if view.page_type == 3 and tokens_match(view.sync_token, token):
                fresh.append(page_no)
    assert fresh
    # crash keeping everything except one fresh bucket
    keep = {("h", p) for p in range(index.file.n_pages)
            if p not in fresh[:1]}
    with pytest.raises(CrashError):
        engine.sync(CrashOnceKeepingPages(keep))
    engine2 = StorageEngine.reopen_after_crash(engine)
    index2 = ExtendibleHashIndex.open(engine2, "h")
    assert all(index2.lookup(k) is not None for k in committed)
    assert any(r.action is Action.REBUILT_FROM_PREV
               for r in index2.repair_log)


def test_lost_directory_rebuilt_from_previous_chain(engine, index):
    """Directory doubling interrupted: the meta's previous chain is
    re-doubled — the root-pointer shadowing transferred to hashing."""
    for i in range(64):
        index.insert(i, tid_for(i))
    engine.sync()
    doublings = index.stats_directory_doublings
    i = 64
    while index.stats_directory_doublings == doublings:
        index.insert(i, tid_for(i))
        i += 1
    root, prev_root, depth = index._meta_state()
    # crash losing the new chain (and everything else in the window)
    with pytest.raises(CrashError):
        engine.sync(CrashOnceKeepingPages(set()))
    engine2 = StorageEngine.reopen_after_crash(engine)
    index2 = ExtendibleHashIndex.open(engine2, "h")
    committed = set(range(64))
    assert all(index2.lookup(k) is not None for k in committed)


def test_create_window_crash_rebuilds_empty(engine, index):
    """Everything lost before the first successful sync: the index comes
    back empty — every key was uncommitted."""
    for i in range(20):
        index.insert(i, tid_for(i))
    with pytest.raises(CrashError):
        engine.sync(CrashOnceKeepingPages(set()))
    engine2 = StorageEngine.reopen_after_crash(engine)
    index2 = ExtendibleHashIndex.open(engine2, "h")
    assert index2.lookup(5) is None
    index2.insert(5, tid_for(5))
    assert index2.lookup(5) == tid_for(5)
