"""Leaf finger: hit/flush accounting, structural invalidation, and
op-for-op equivalence with the descent path."""

import random

import pytest

from repro import DuplicateKeyError, KeyNotFoundError, StorageEngine, \
    TREE_CLASSES
from repro.fastpath import overridden

from ..conftest import SMALL_PAGE, fill_tree, tid_for

PAGE = SMALL_PAGE
ALL_KINDS = ("normal", "shadow", "reorg", "hybrid")


def build(kind, *, seed=5, n=0):
    engine = StorageEngine.create(page_size=PAGE, seed=seed)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    if n:
        fill_tree(tree, range(n))
    return engine, tree


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_repeated_lookup_hits_finger(kind):
    with overridden(True):
        _, tree = build(kind, n=200)
        # touch 57's leaf with an update first: a reorg leaf may hold
        # backup keys from its split, and the finger (correctly) refuses
        # to serve until the Section 3.4 reclamation check has run
        tree.delete(57)
        tree.insert(57, tid_for(57))
        assert tree.lookup(57) == tid_for(57)
        before = tree.stats_finger_hits
        for _ in range(5):
            assert tree.lookup(57) == tid_for(57)
        assert tree.stats_finger_hits >= before + 5


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_sequential_append_keeps_finger_hot(kind):
    """The rightmost leaf serves past its max key (no right peer), so an
    ascending load should run mostly on the finger."""
    with overridden(True):
        engine, tree = build(kind)
        for i in range(400):
            tree.insert(i, tid_for(i))
        assert tree.stats_finger_hits > 200


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_split_invalidates_finger_stamp(kind):
    with overridden(True):
        engine, tree = build(kind, n=40)
        tree.lookup(0)  # establish a finger with the pre-split stamp
        stamp = tree._fastpath.finger_stamp
        assert stamp is not None
        splits = tree.stats_splits
        i = 40
        while tree.stats_splits == splits:
            tree.insert(i, tid_for(i))
            i += 1
        # the split changed the stamp: a stale finger can never serve
        assert tree._fp_stamp() != stamp
        flushes = tree.stats_finger_flushes
        tree.lookup(0)
        assert (tree._fastpath.finger_stamp == tree._fp_stamp()
                or tree._fastpath.finger_page is None)
        assert tree.stats_finger_flushes >= flushes


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_reclaim_flushes_finger(kind):
    with overridden(True):
        _, tree = build(kind, n=300)
        tree.lookup(10)
        epoch = tree._fp_epoch
        for i in range(300):
            tree.delete(i)
        assert tree._fp_epoch > epoch  # reclamations bumped the epoch
        assert len(tree.items()) == 0


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_finger_ops_raise_like_descent(kind):
    with overridden(True):
        _, tree = build(kind, n=100)
        tree.lookup(50)  # establish a finger over 50's leaf
        with pytest.raises(DuplicateKeyError):
            tree.insert(50, tid_for(50))
        tree.delete(50)
        with pytest.raises(KeyNotFoundError):
            tree.delete(50)  # finger-served delete of a missing key
        assert tree.lookup(50) is None


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_mixed_ops_match_disabled_mode(kind):
    """Oracle test: the same randomized op sequence with the fastpath on
    and off must leave identical indexes."""
    rng = random.Random(99)
    ops = []
    live = set()
    universe = list(range(2000))
    for _ in range(1500):
        roll = rng.random()
        if roll < 0.55 or not live:
            key = rng.choice(universe)
            if key not in live:
                live.add(key)
                ops.append(("insert", key))
        elif roll < 0.8:
            key = rng.choice(sorted(live))
            live.discard(key)
            ops.append(("delete", key))
        else:
            ops.append(("lookup", rng.choice(universe)))

    def apply(enabled):
        with overridden(enabled):
            engine, tree = build(kind, seed=7)
            out = []
            for i, (op, key) in enumerate(ops):
                if op == "insert":
                    tree.insert(key, tid_for(key))
                elif op == "delete":
                    tree.delete(key)
                else:
                    out.append(tree.lookup(key))
                if i % 97 == 0:
                    engine.sync()
            engine.sync()
            return out, tree.check(), sorted(k for k, _ in tree.items())

    on = apply(True)
    off = apply(False)
    assert on == off
