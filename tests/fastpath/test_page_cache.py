"""Decoded-key directory: version keying, incremental maintenance,
eviction, and equivalence with the byte-path search."""
# lint: disable=R003,R012 — these unit tests build NodeViews over standalone
# bytearrays (no pool frame, no sync), so there is nothing to mark dirty;
# version bumps are applied by hand where a test needs them.

import pytest

from repro import StorageEngine, TREE_CLASSES, TID
from repro.core.nodeview import NodeView
from repro.constants import PAGE_LEAF
from repro.core import items as I
from repro.fastpath import FastPath, overridden
from repro.storage.buffer_pool import Buffer

from ..conftest import SMALL_PAGE, fill_tree, tid_for

PAGE = SMALL_PAGE


def make_leaf_buffer(keys, page_size=PAGE):
    data = bytearray(page_size)
    view = NodeView(data, page_size)
    view.init_page(PAGE_LEAF, level=0, sync_token=1, shadow_items=False)
    for slot, key in enumerate(sorted(keys)):
        view.insert_item(slot, I.pack_leaf_item(key, TID(1, slot)))
    buf = Buffer(3, data)
    return buf, NodeView(data, page_size)


def fresh_fastpath(cap=4096):
    return FastPath(kind="test", file_name="t", cache_cap=cap)


def test_keys_for_hit_requires_matching_version():
    buf, view = make_leaf_buffer([b"a", b"b", b"c"])
    fp = fresh_fastpath()
    keys = fp.keys_for(buf, view)
    assert keys == [b"a", b"b", b"c"]
    assert fp.keys_for(buf, view) is keys
    assert fp.cache_hits == 1 and fp.cache_misses == 1
    # any version bump forces a re-decode
    buf.version += 1
    assert fp.keys_for(buf, view) is not None
    assert fp.cache_misses == 2


def test_note_insert_restamps_to_current_version():
    buf, view = make_leaf_buffer([b"a", b"c"])
    fp = fresh_fastpath()
    keys = fp.keys_for(buf, view)
    view.insert_item(1, I.pack_leaf_item(b"b", TID(1, 9)))
    buf.version += 7          # what mark_dirty would do
    assert fp.note_insert(buf, 1, b"b", keys)
    served = fp.keys_for(buf, view)
    assert served is keys and served == [b"a", b"b", b"c"]
    assert fp.cache_hits == 1


def test_note_delete_restamps_to_current_version():
    buf, view = make_leaf_buffer([b"a", b"b", b"c"])
    fp = fresh_fastpath()
    keys = fp.keys_for(buf, view)
    view.delete_item(0)
    buf.version += 1
    assert fp.note_delete(buf, 0, keys)
    assert fp.keys_for(buf, view) == [b"b", b"c"]


def test_note_insert_refuses_foreign_list():
    buf, view = make_leaf_buffer([b"a"])
    fp = fresh_fastpath()
    fp.keys_for(buf, view)
    stale = [b"a"]
    assert not fp.note_insert(buf, 1, b"b", stale)
    assert stale == [b"a"]    # untouched


def test_cache_cap_evicts_oldest():
    fp = fresh_fastpath(cap=2)
    for page_no in (1, 2, 3):
        buf, view = make_leaf_buffer([b"k%d" % page_no])
        buf.page_no = page_no
        fp.keys_for(buf, view)
    assert fp.cache_len() == 2
    assert fp.cache_evictions == 1


def test_decoded_keys_none_on_garbage():
    data = bytearray(PAGE)
    data[0:PAGE] = bytes([0xFF]) * PAGE
    view = NodeView(data, PAGE)
    assert view.decoded_keys() is None


def test_zeroed_page_not_cached():
    buf = Buffer(5, bytearray(PAGE))
    fp = fresh_fastpath()
    view = NodeView(buf.data, PAGE)
    assert fp.keys_for(buf, view) in (None, [])
    # garbage/zeroed pages never poison the directory with wrong keys


def test_mark_dirty_and_remap_and_reopen_bump_versions(engine):
    file = engine.create_file("f")
    page = file.allocate()
    buf = file.pin(page)
    try:
        v0 = buf.version
        file.mark_dirty(buf)
        assert buf.version > v0
    finally:
        file.unpin(buf)
    engine.sync()
    # a dropped frame re-faults as a new Buffer with a new version
    file.pool.drop(page)
    buf2 = file.pin(page)
    try:
        assert buf2.version > v0
    finally:
        file.unpin(buf2)


@pytest.mark.parametrize("kind", ("normal", "shadow", "reorg", "hybrid"))
def test_cached_search_equivalent_to_byte_search(kind):
    with overridden(True):
        engine = StorageEngine.create(page_size=PAGE, seed=42)
        tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
        fill_tree(tree, range(500))
    with overridden(False):
        engine2 = StorageEngine.create(page_size=PAGE, seed=42)
        tree2 = TREE_CLASSES[kind].create(engine2, "ix", codec="uint32")
        fill_tree(tree2, range(500))
    for probe in range(520):
        assert tree.lookup(probe) == tree2.lookup(probe)
    assert tree.check() == tree2.check()
    assert tree.stats_cache_hits > 0


@pytest.mark.parametrize("kind", ("shadow", "reorg"))
def test_cache_counters_exported_via_registry(kind):
    from repro.obs import get_registry
    with overridden(True):
        engine = StorageEngine.create(page_size=PAGE, seed=3)
        tree = TREE_CLASSES[kind].create(engine, "ixq", codec="uint32")
        fill_tree(tree, range(200))
        for i in range(200):
            tree.lookup(i)
        snap = get_registry().snapshot()
    hits = [v for k, v in snap["counters"].items()
            if k.startswith("fastpath.page_cache.hits") and "ixq" in k]
    assert hits and hits[0] == tree.stats_cache_hits > 0


def test_disabled_mode_attaches_no_fastpath():
    with overridden(False):
        engine = StorageEngine.create(page_size=PAGE, seed=3)
        tree = TREE_CLASSES["shadow"].create(engine, "ix", codec="uint32")
        fill_tree(tree, range(100))
        assert tree._fastpath is None
        assert tree.stats_cache_hits == 0
        assert tree.stats_finger_hits == 0
