"""Batched ops: ``insert_many`` / ``delete_many`` equivalence with the
single-key path, mid-batch error semantics, and amortization accounting."""

import random

import pytest

from repro import DuplicateKeyError, KeyNotFoundError, StorageEngine, \
    TREE_CLASSES
from repro.fastpath import overridden
from repro.shard import ShardedEngine

from ..conftest import SMALL_PAGE, tid_for

PAGE = SMALL_PAGE
ALL_KINDS = ("normal", "shadow", "reorg", "hybrid")


def build(kind, *, seed=11):
    engine = StorageEngine.create(page_size=PAGE, seed=seed)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    return engine, tree


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_insert_many_matches_singles(kind):
    rng = random.Random(4)
    keys = rng.sample(range(5000), 600)
    with overridden(True):
        engine_a, batched = build(kind)
        assert batched.insert_many((k, tid_for(k)) for k in keys) == 600
        engine_a.sync()
    with overridden(False):
        engine_b, singles = build(kind)
        for k in keys:
            singles.insert(k, tid_for(k))
        engine_b.sync()
    assert batched.items() == singles.items()
    assert len(batched.check()) == len(keys)


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_delete_many_matches_singles(kind):
    keys = list(range(400))
    victims = keys[50:250]
    with overridden(True):
        engine_a, batched = build(kind)
        batched.insert_many((k, tid_for(k)) for k in keys)
        assert batched.delete_many(victims) == len(victims)
        engine_a.sync()
    with overridden(False):
        engine_b, singles = build(kind)
        for k in keys:
            singles.insert(k, tid_for(k))
        for k in victims:
            singles.delete(k)
        engine_b.sync()
    assert batched.items() == singles.items()
    assert len(batched.check()) == len(keys) - len(victims)


@pytest.mark.parametrize("kind", ("normal", "reorg"))
def test_insert_many_duplicate_aborts_mid_batch(kind):
    with overridden(True):
        _, tree = build(kind)
        tree.insert(100, tid_for(100))
        with pytest.raises(DuplicateKeyError):
            tree.insert_many((k, tid_for(k)) for k in (10, 50, 100, 200))
        # the batch runs in sorted key order: keys before the duplicate
        # landed, the duplicate and everything after it did not
        assert tree.lookup(10) == tid_for(10)
        assert tree.lookup(50) == tid_for(50)
        assert tree.lookup(200) is None
        assert len(tree.check()) == 3


@pytest.mark.parametrize("kind", ("shadow", "hybrid"))
def test_delete_many_missing_key_aborts_mid_batch(kind):
    with overridden(True):
        _, tree = build(kind)
        tree.insert_many((k, tid_for(k)) for k in range(0, 100, 2))
        with pytest.raises(KeyNotFoundError):
            tree.delete_many([2, 4, 7, 8])  # 7 was never inserted
        assert tree.lookup(2) is None and tree.lookup(4) is None
        assert tree.lookup(8) == tid_for(8)  # sorted after the miss


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_cross_leaf_batch_spans_splits(kind):
    """A batch far bigger than one page forces splits mid-batch; the
    fallback single-insert path absorbs the heads that cannot fit."""
    with overridden(True):
        engine, tree = build(kind)
        n = 1200
        assert tree.insert_many((k, tid_for(k)) for k in range(n)) == n
        assert tree.stats_splits > 0
        assert len(tree.check()) == n
        engine.sync()
        assert [k for k, _ in tree.items()] == list(range(n))


def test_batched_amortized_counter_counts_shared_descents():
    with overridden(True):
        _, tree = build("shadow")
        tree.insert_many((k, tid_for(k)) for k in range(64))
        # 64 sorted keys into a near-empty tree share descents; every key
        # after the first on each leaf is an amortized descent saved
        assert tree._fastpath.batched_amortized > 0
        before = tree._fastpath.batched_amortized
        tree.delete_many(range(0, 64, 2))
        assert tree._fastpath.batched_amortized > before


def test_insert_many_accepts_tid_tuples():
    with overridden(True):
        _, tree = build("normal")
        assert tree.insert_many([(1, (7, 3)), (2, (7, 4))]) == 2
        assert tree.lookup(1).page_no == 7


@pytest.mark.parametrize("enabled", (True, False))
def test_batched_ops_work_with_fastpath_disabled(enabled):
    """The batched API is a descent amortization, not a cache feature:
    it must produce identical results with the fastpath off."""
    with overridden(enabled):
        engine, tree = build("reorg")
        assert tree.insert_many((k, tid_for(k)) for k in range(300)) == 300
        assert tree.delete_many(range(100, 200)) == 100
        engine.sync()
        assert len(tree.check()) == 200
        assert tree.lookup(150) is None and tree.lookup(250) == tid_for(250)


def test_sharded_tree_batched_ops_route_per_shard():
    with overridden(True):
        group = ShardedEngine.create(4, page_size=PAGE, seed=3)
        tree = group.create_tree("shadow", "ix", codec="uint32")
        keys = list(range(500))
        assert tree.insert_many((k, tid_for(k)) for k in keys) == 500
        group.sync_all()
        for k in (0, 123, 499):
            assert tree.lookup(k) == tid_for(k)
        assert [k for k, _ in tree.range_scan()] == keys
        assert tree.delete_many(range(100, 300)) == 200
        group.sync_all()
        assert tree.lookup(150) is None
        assert len([k for k, _ in tree.range_scan()]) == 300
