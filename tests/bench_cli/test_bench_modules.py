"""Smoke tests for the benchmark CLI modules at tiny sizes.

These assert the *shape* of each result the paper's evaluation reports,
not absolute numbers: who wins, which counters move, which claims hold.
"""

import pytest

from repro.bench import heights, logvolume, recovery, space, stalls, table1


def test_table1_shape():
    data = table1.run([800], reps=2, lookups=500, page_size=2048,
                      kinds=("normal", "reorg", "shadow"), quiet=True)
    for table in (data["insert"], data["lookup"]):
        base = table["normal"][800]
        assert base > 0
        # the recoverable trees pay a verification overhead over the
        # baseline — the ordering Table 1 shows (wide tolerance: these
        # are tiny runs on a shared box)
        assert table["shadow"][800] > base * 0.7
        assert table["reorg"][800] > base * 0.7
    assert data["worst_overhead"] > 0
    table1.print_report(data, [800], wisconsin=True)


def test_heights_reproduces_section5_claims():
    data = heights.run(page_size=8192, fill=0.5)
    # claim 1: heights coincide for most sizes
    assert all(f > 0.9 for f in data["coincide"].values())
    # claim 2: four-byte keys never reach five levels within 2 GB
    assert data["at_limit"][4]["normal"] < 5
    assert data["at_limit"][4]["shadow"] < 5
    # the table rows agree pairwise within one level
    for row in data["rows"]:
        assert row["shadow"] - row["normal"] in (0, 1)
    heights.print_report(data)


def test_recovery_campaign_contrast():
    results = [recovery.campaign(kind, runs=12, n=300, page_size=512)
               for kind in ("normal", "shadow")]
    normal, shadow = results
    assert shadow.crashes >= 5
    assert shadow.lost_data == 0 and shadow.corrupt == 0
    assert shadow.recovered == shadow.crashes
    assert normal.lost_data + normal.corrupt > 0
    # restart is cheap: a handful of page reads, not a log scan
    assert shadow.restart_reads and max(shadow.restart_reads) < 20
    recovery.print_report(results)


def test_logvolume_claims():
    data = logvolume.run(n=2500, page_size=512)
    assert data["ratio"] > 2.0
    assert data["phys_poisoned"] > 0
    assert data["logi_poisoned"] == 0
    logvolume.print_report(data)


def test_space_overhead_shape():
    rows = space.run(n=4000, page_size=1024, key_sizes=(4,))
    by_kind = {r["kind"]: r for r in rows}
    # same height everywhere at this size; shadow burns more gross file
    # space (pre-GC churn) but the same reachable pages
    assert by_kind["shadow"]["height"] == by_kind["normal"]["height"]
    assert by_kind["shadow"]["file_pages"] > by_kind["normal"]["file_pages"]
    assert by_kind["shadow"]["leaf_pages"] == pytest.approx(
        by_kind["normal"]["leaf_pages"], rel=0.15)
    space.print_report(rows)


def test_stalls_only_reorg_blocks():
    rows = stalls.run(n=1500, page_size=512, intervals=(50, 1500))
    by = {(r["kind"], r["sync_every"]): r for r in rows}
    assert by[("reorg", 1500)]["forced_syncs"] > 0
    assert by[("normal", 1500)]["forced_syncs"] == 0
    assert by[("shadow", 1500)]["forced_syncs"] == 0
    # rarer commits mean more in-window double splits, hence more stalls
    assert by[("reorg", 1500)]["forced_syncs"] >= \
        by[("reorg", 50)]["forced_syncs"]
    stalls.print_report(rows)


def test_cli_entry_points_run(capsys):
    table1.main(["--sizes", "300", "--reps", "1", "--lookups", "100",
                 "--page-size", "1024", "--kinds", "normal,shadow"])
    heights.main([])
    logvolume.main(["--n", "800", "--page-size", "512"])
    space.main(["--n", "1000", "--page-size", "1024", "--key-sizes", "4"])
    stalls.main(["--n", "600", "--page-size", "512",
                 "--intervals", "50,600"])
    recovery.main(["--runs", "4", "--n", "200", "--kinds", "shadow"])
    out = capsys.readouterr().out
    assert "Inserts" in out
    assert "2 GB" in out
