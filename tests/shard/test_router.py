"""Routing invariants: stability, coverage, uniformity."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.keys import CODECS
from repro.errors import ReproError
from repro.shard import ShardRouter


def test_routing_is_stable_and_in_range():
    router = ShardRouter(5)
    codec = CODECS["uint32"]
    first = [router.shard_of(codec.encode(k)) for k in range(500)]
    second = [router.shard_of(codec.encode(k)) for k in range(500)]
    assert first == second
    assert all(0 <= s < 5 for s in first)


def test_routing_independent_of_instance():
    codec = CODECS["uint32"]
    a, b = ShardRouter(8), ShardRouter(8)
    for k in range(200):
        key = codec.encode(k)
        assert a.shard_of(key) == b.shard_of(key)


def test_single_shard_routes_everything_to_zero():
    router = ShardRouter(1)
    codec = CODECS["uint32"]
    assert {router.shard_of(codec.encode(k)) for k in range(64)} == {0}


def test_partition_preserves_arrival_order_within_shard():
    router = ShardRouter(4)
    codec = CODECS["uint32"]
    keys = [codec.encode(k) for k in range(300)]
    parts = router.partition(keys)
    assert sum(len(p) for p in parts) == len(keys)
    order = {key: i for i, key in enumerate(keys)}
    for part in parts:
        positions = [order[key] for key in part]
        assert positions == sorted(positions)


def test_distribution_is_roughly_uniform():
    """Ascending keys — the paper's worst-case insert order — must not
    become a hot spot in shard space."""
    router = ShardRouter(4)
    codec = CODECS["uint32"]
    keys = [codec.encode(k) for k in range(4000)]
    counts = router.distribution(keys)
    assert sum(counts.values()) == 4000
    assert router.imbalance(keys) < 1.15


def test_imbalance_of_empty_stream_is_neutral():
    assert ShardRouter(3).imbalance([]) == 1.0


def test_rejects_nonpositive_shard_count():
    with pytest.raises(ReproError):
        ShardRouter(0)
    with pytest.raises(ReproError):
        ShardRouter(-3)


_ROUTE_SCRIPT = """\
from repro.core.keys import CODECS
from repro.shard import ShardRouter

router = ShardRouter(8)
codec = CODECS["uint32"]
print(",".join(str(router.shard_of(codec.encode(k)))
               for k in range(256)))
"""


def route_in_subprocess(hash_seed: str) -> str:
    """Route a fixed key sample in a fresh interpreter with a chosen
    hash salt."""
    env = dict(os.environ,
               PYTHONHASHSEED=hash_seed,
               PYTHONPATH=str(Path(__file__).resolve().parents[2] / "src"))
    result = subprocess.run([sys.executable, "-c", _ROUTE_SCRIPT],
                            env=env, capture_output=True, text=True,
                            timeout=60, check=True)
    return result.stdout.strip()


def test_routing_survives_process_restarts():
    # the shard that wrote a key is the only one whose index holds it,
    # so routing must not depend on the per-process hash salt: two
    # incarnations with different salts agree with each other and with
    # this process
    first = route_in_subprocess("1")
    second = route_in_subprocess("9001")
    assert first == second
    router = ShardRouter(8)
    codec = CODECS["uint32"]
    here = ",".join(str(router.shard_of(codec.encode(k)))
                    for k in range(256))
    assert here == first


@pytest.mark.parametrize("n_shards", [2, 4, 16])
def test_skew_bound_holds_across_shard_counts(n_shards):
    # 1000 keys per shard: a fair hash lands max/mean comfortably
    # under 1.25 at every pool size the benchmarks use
    router = ShardRouter(n_shards)
    codec = CODECS["uint32"]
    keys = [codec.encode(k) for k in range(1000 * n_shards)]
    counts = router.distribution(keys)
    assert set(counts) == set(range(n_shards))
    assert min(counts.values()) > 0
    assert router.imbalance(keys) < 1.25


def test_empty_key_routes_deterministically():
    # the bytes codec can emit b"" — it must route like any other key
    router = ShardRouter(4)
    assert 0 <= router.shard_of(b"") < 4
    assert router.shard_of(b"") == ShardRouter(4).shard_of(b"")


def test_empty_stream_edge_cases():
    router = ShardRouter(3)
    assert router.partition([]) == [[], [], []]
    counts = router.distribution([])
    assert set(counts) == {0, 1, 2}
    assert sum(counts.values()) == 0
    assert router.imbalance([]) == 1.0
