"""Routing invariants: stability, coverage, uniformity."""

import pytest

from repro.core.keys import CODECS
from repro.errors import ReproError
from repro.shard import ShardRouter


def test_routing_is_stable_and_in_range():
    router = ShardRouter(5)
    codec = CODECS["uint32"]
    first = [router.shard_of(codec.encode(k)) for k in range(500)]
    second = [router.shard_of(codec.encode(k)) for k in range(500)]
    assert first == second
    assert all(0 <= s < 5 for s in first)


def test_routing_independent_of_instance():
    codec = CODECS["uint32"]
    a, b = ShardRouter(8), ShardRouter(8)
    for k in range(200):
        key = codec.encode(k)
        assert a.shard_of(key) == b.shard_of(key)


def test_single_shard_routes_everything_to_zero():
    router = ShardRouter(1)
    codec = CODECS["uint32"]
    assert {router.shard_of(codec.encode(k)) for k in range(64)} == {0}


def test_partition_preserves_arrival_order_within_shard():
    router = ShardRouter(4)
    codec = CODECS["uint32"]
    keys = [codec.encode(k) for k in range(300)]
    parts = router.partition(keys)
    assert sum(len(p) for p in parts) == len(keys)
    order = {key: i for i, key in enumerate(keys)}
    for part in parts:
        positions = [order[key] for key in part]
        assert positions == sorted(positions)


def test_distribution_is_roughly_uniform():
    """Ascending keys — the paper's worst-case insert order — must not
    become a hot spot in shard space."""
    router = ShardRouter(4)
    codec = CODECS["uint32"]
    keys = [codec.encode(k) for k in range(4000)]
    counts = router.distribution(keys)
    assert sum(counts.values()) == 4000
    assert router.imbalance(keys) < 1.15


def test_imbalance_of_empty_stream_is_neutral():
    assert ShardRouter(3).imbalance([]) == 1.0


def test_rejects_nonpositive_shard_count():
    with pytest.raises(ReproError):
        ShardRouter(0)
