"""Parallel recovery orchestration: correctness, reports, isolation."""

import pytest

from repro import TID, CrashError
from repro.obs import get_registry, get_trace, metric_key
from repro.shard import (RecoveryOrchestrator, ShardedEngine,
                         recover_group)
from repro.storage import RandomSubsetCrash

PAGE = 512
KEYS = 240


def build_group(n=4, keys=KEYS, seed=17, kind="shadow"):
    group = ShardedEngine.create(n, page_size=PAGE, seed=seed)
    tree = group.create_tree(kind, "ix", codec="uint32")
    for k in range(keys):
        tree.insert(k, TID(1 + (k >> 8), k & 0xFF))
        if (k + 1) % 80 == 0:
            group.sync_all()
    group.sync_all()
    return group, tree


def crash_shards(group, tree, victims, *, keys=KEYS, seed=23):
    """Arm the victims, push uncommitted inserts group-wide, then sync
    each victim so it dies with a random page subset persisted."""
    for index in victims:
        group.shard(index).crash_policy = RandomSubsetCrash(
            p=1.0, seed=seed + index)
    for j in range(keys, keys + 60):
        try:
            tree.insert(j, TID(7, j % 100))
        except CrashError:
            continue
    for index in victims:
        if not group.shard(index).dead:
            try:
                group.shard(index).sync()
            except CrashError:
                pass
    assert sorted(group.crashed_shards()) == sorted(victims)


@pytest.mark.parametrize("kind", ["shadow", "reorg", "hybrid"])
def test_parallel_recovery_restores_every_committed_key(kind):
    group, tree = build_group(kind=kind)
    crash_shards(group, tree, [0, 2])
    group2, report = RecoveryOrchestrator().recover(group, "ix")
    assert report.ok
    assert report.max_workers == len(group)
    tree2 = group2.open_tree("ix")
    scanned = {k for k, _ in tree2.range_scan()}
    missing = [k for k in range(KEYS) if k not in scanned]
    assert not missing, f"lost committed keys {missing[:10]}"
    # the group accepts new work afterwards
    tree2.insert(100_000, TID(9, 9))
    group2.sync_all()
    group2.shutdown()


def test_live_shards_pass_through_untouched():
    group, tree = build_group()
    crash_shards(group, tree, [1])
    survivors = [group.shard(i) for i in (0, 2, 3)]
    group2, report = RecoveryOrchestrator().recover(group, "ix")
    for i, engine in zip((0, 2, 3), survivors):
        assert group2.shard(i) is engine
    assert group2.shard(1) is not group.shard(1)
    by_shard = {r.shard: r for r in report.shards}
    assert by_shard[1].keys_seen > 0
    for i in (0, 2, 3):
        assert by_shard[i].ok and by_shard[i].keys_seen == 0


def test_serial_and_parallel_recover_identical_state():
    group, tree = build_group(seed=31)
    crash_shards(group, tree, [0, 1, 2, 3], seed=41)
    snaps = [{name: disk.snapshot()
              for name, disk in engine._disks.items()}
             for engine in group.shards]

    serial_group, serial_report = RecoveryOrchestrator(
        max_workers=1).recover(group, "ix")
    serial_keys = list(serial_group.open_tree("ix").range_scan())

    for engine, snap in zip(group.shards, snaps):
        for name, disk in engine._disks.items():
            disk.restore(snap[name])
    parallel_group, parallel_report = RecoveryOrchestrator().recover(
        group, "ix")
    parallel_keys = list(parallel_group.open_tree("ix").range_scan())

    assert serial_report.ok and parallel_report.ok
    assert serial_keys == parallel_keys
    assert serial_report.max_workers == 1
    assert parallel_report.max_workers == 4


def test_fsck_first_reports_clean_after_reopen():
    group, tree = build_group()
    crash_shards(group, tree, [3])
    group2, report = RecoveryOrchestrator(fsck_first=True).recover(
        group, "ix")
    by_shard = {r.shard: r for r in report.shards}
    assert by_shard[3].fsck_errors == 0
    assert by_shard[0].fsck_errors is None  # live shard: fsck not run


def test_recover_group_convenience_wrapper():
    group, tree = build_group()
    crash_shards(group, tree, [2])
    group2, report = recover_group(group, "ix", parallel=False)
    assert report.ok and report.max_workers == 1
    assert set(group2.live_shards()) == {0, 1, 2, 3}


def test_recovery_emits_per_shard_metrics_and_traces():
    group, tree = build_group()
    crash_shards(group, tree, [1, 3])
    before = get_registry().snapshot()["histograms"]
    RecoveryOrchestrator().recover(group, "ix")
    hists = get_registry().snapshot()["histograms"]
    for index in (1, 3):
        key = metric_key("shard.recovery.seconds",
                         {"shard": str(index)})
        grew = hists.get(key, {}).get("count", 0) > \
            before.get(key, {}).get("count", 0)
        assert grew, f"no repair-latency sample for shard {index}"
    events = [e for e in get_trace().events()
              if e.etype == "shard_recovery"]
    recovered = {e.detail["shard"] for e in events[-2:]}
    assert recovered == {1, 3}


def test_raising_on_reopen_hook_does_not_discard_siblings():
    # a hook bug (or any non-ReproError escape from one worker) must be
    # contained to its shard: siblings recovered in the same pass stay
    # recovered, the pass returns instead of raising
    group, tree = build_group()
    crash_shards(group, tree, [0, 2])

    def bad_hook(index, engine):
        if index == 0:
            raise ValueError("hook bug on shard 0")

    group2, report = RecoveryOrchestrator(on_reopen=bad_hook).recover(
        group, "ix")
    assert not report.ok
    assert report.failed_shards() == [0]
    by_shard = {r.shard: r for r in report.shards}
    assert "ValueError" in by_shard[0].error
    assert by_shard[2].ok and by_shard[2].keys_seen > 0
    # the victim keeps its dead engine; the sibling serves
    assert group2.shard(0) is group.shard(0)
    assert set(group2.live_shards()) == {1, 2, 3}
    # a retry pass (hook fixed) heals the victim with siblings untouched
    group3, retry = RecoveryOrchestrator().recover(group2, "ix")
    assert retry.ok
    assert group3.shard(2) is group2.shard(2)
    scanned = {k for k, _ in group3.open_tree("ix").range_scan()}
    assert set(range(KEYS)) <= scanned


def test_non_crash_failure_keeps_the_shard_gated():
    # a ReproError after reopen (a refused open, a raising verifier)
    # leaves the reopened engine live but unverified — the orchestrator
    # must hand back the *dead* engine so live_shards() never routes
    # traffic to a shard whose report says ok=False
    group, tree = build_group()
    crash_shards(group, tree, [1])

    from repro.errors import ReproError

    def refuse(index, engine):
        raise ReproError("verifier refused this shard")

    group2, report = RecoveryOrchestrator(on_reopen=refuse).recover(
        group, "ix")
    assert report.failed_shards() == [1]
    assert group2.shard(1) is group.shard(1), \
        "failed shard must keep its dead engine, not the reopened one"
    assert 1 not in group2.live_shards()
    group3, retry = RecoveryOrchestrator().recover(group2, "ix")
    assert retry.ok
    scanned = {k for k, _ in group3.open_tree("ix").range_scan()}
    assert set(range(KEYS)) <= scanned


def test_recovery_of_a_clean_group_is_a_no_op():
    group, tree = build_group()
    group2, report = RecoveryOrchestrator().recover(group, "ix")
    assert report.ok
    assert all(r.keys_seen == 0 for r in report.shards)
    assert all(group2.shard(i) is group.shard(i)
               for i in range(len(group)))
