"""Instant restart: serve traffic cold while the background heal runs.

The admit pass must put crashed shards back in service at reopen cost
(no sweep), the heal queue must drive the deferred repairs to the same
final state the stop-the-world pass reaches, hot subtrees must heal
first under access-frequency priority, and the worker pool must
interleave heal units between foreground operations.
"""

import pytest

from repro import TID, CrashError
from repro.obs import get_registry, get_trace, metric_key, scoped_trace
from repro.shard import (RecoveryOrchestrator, ShardWorkerPool,
                         ShardedEngine, recover_group)
from repro.storage import RandomSubsetCrash
from repro.storage.engine import EngineDeadError
from repro.tools.fsck import fsck_group

PAGE = 512
KEYS = 240


def build_group(n=4, keys=KEYS, seed=17, kind="shadow"):
    group = ShardedEngine.create(n, page_size=PAGE, seed=seed)
    tree = group.create_tree(kind, "ix", codec="uint32")
    for k in range(keys):
        tree.insert(k, TID(1 + (k >> 8), k & 0xFF))
        if (k + 1) % 80 == 0:
            group.sync_all()
    group.sync_all()
    return group, tree


def crash_shards(group, tree, victims, *, keys=KEYS, seed=23):
    for index in victims:
        group.shard(index).crash_policy = RandomSubsetCrash(
            p=1.0, seed=seed + index)
    for j in range(keys, keys + 60):
        try:
            tree.insert(j, TID(7, j % 100))
        except CrashError:
            continue
    for index in victims:
        if not group.shard(index).dead:
            try:
                group.shard(index).sync()
            except CrashError:
                pass
    assert sorted(group.crashed_shards()) == sorted(victims)


def admit(group, **kwargs):
    orchestrator = RecoveryOrchestrator(admit_immediately=True, **kwargs)
    return orchestrator.recover(group, "ix")


# ---------------------------------------------------------------------------
# admission
# ---------------------------------------------------------------------------

def test_admit_serves_committed_keys_before_any_heal_unit_runs():
    group, tree = build_group()
    crash_shards(group, tree, [0, 2])
    group2, report = admit(group)
    assert report.ok
    assert report.heal is not None
    by_shard = {r.shard: r for r in report.shards}
    for index in (0, 2):
        assert by_shard[index].mode == "admit"
        # admission drove zero repairs: no sweep, no scan
        assert by_shard[index].keys_seen == 0
        assert by_shard[index].drive_seconds == 0.0
    # nothing healed yet — the sweep has not even been seeded
    heal = report.heal
    assert heal.pending_shards() == [0, 2]
    assert not heal.done
    for state in heal.progress().values():
        assert state["units_done"] == 0
    # yet every committed key already answers through the serving handle
    serving = heal.tree
    for k in range(0, KEYS, 17):
        assert serving.lookup(k) is not None, f"cold lookup lost key {k}"
    # ttfq is the cold-reopen cost, not the whole pass
    assert report.time_to_first_query <= report.wall_seconds


def test_admit_time_to_first_query_is_max_restart_cost():
    group, tree = build_group()
    crash_shards(group, tree, [1, 3])
    group2, report = admit(group)
    expected = max(r.restart_seconds for r in report.shards)
    assert report.time_to_first_query == expected


def test_stop_the_world_report_has_no_heal_queue():
    group, tree = build_group()
    crash_shards(group, tree, [1])
    group2, report = RecoveryOrchestrator().recover(group, "ix")
    assert report.ok
    assert report.heal is None
    assert report.time_to_first_query == report.wall_seconds


def test_admit_of_a_clean_group_has_nothing_to_heal():
    group, tree = build_group()
    group2, report = admit(group)
    assert report.ok
    assert report.heal is None or report.heal.shard_indexes == []


# ---------------------------------------------------------------------------
# access-frequency priority
# ---------------------------------------------------------------------------

def test_hot_subtree_heals_before_cold_units():
    group, tree = build_group()
    crash_shards(group, tree, [0])
    group2, report = admit(group)
    heal = report.heal
    serving = heal.tree
    member = serving.trees[0]
    healed_units = []
    orig = member.heal_unit

    def recording_heal_unit(key):
        healed_units.append(key)
        return orig(key)

    member.heal_unit = recording_heal_unit
    # hammer one key routed to the healing shard — its covering unit
    # must jump the queue
    hot = next(k for k in range(KEYS) if serving.shard_of(k) == 0
               and serving.codec.encode(k) > serving.codec.encode(0))
    for _ in range(8):
        serving.lookup(hot)
    heal.step(0, max_units=3)
    assert healed_units, "stepping must heal at least one unit"
    sweep = heal._shards[0].sweep
    expected = sweep._covering_unit(serving.codec.encode(hot))
    assert healed_units[0] == expected, (
        f"hot unit {expected!r} healed at position "
        f"{healed_units.index(expected) if expected in healed_units else -1}")


def test_cold_sweep_heals_in_ascending_deterministic_order():
    group, tree = build_group()
    crash_shards(group, tree, [0])
    group2, report = admit(group)
    member = report.heal.tree.trees[0]
    healed_units = []
    orig = member.heal_unit
    member.heal_unit = lambda key: (healed_units.append(key), orig(key))[1]
    report.heal.step(0, max_units=4)
    assert len(healed_units) >= 2
    assert healed_units == sorted(healed_units), (
        "with no foreground accesses the heal must run in ascending "
        "unit order, matching the stop-the-world drive")


# ---------------------------------------------------------------------------
# equivalence with the stop-the-world sweep
# ---------------------------------------------------------------------------

def test_full_heal_matches_stop_the_world_final_state():
    group, tree = build_group(seed=31)
    crash_shards(group, tree, [0, 1, 2, 3], seed=41)
    snaps = [{name: disk.snapshot()
              for name, disk in engine._disks.items()}
             for engine in group.shards]

    sweep_group, sweep_report = RecoveryOrchestrator().recover(group, "ix")
    assert sweep_report.ok
    sweep_keys = list(sweep_group.open_tree("ix").range_scan())

    for engine, snap in zip(group.shards, snaps):
        for name, disk in engine._disks.items():
            disk.restore(snap[name])
    admit_group, admit_report = admit(group)
    assert admit_report.ok
    heal = admit_report.heal
    heal.drain()
    assert heal.healed
    assert heal.time_to_full_heal() is not None
    admit_keys = list(heal.tree.range_scan())
    assert admit_keys == sweep_keys
    assert fsck_group(admit_group).errors == 0
    # the healed group accepts and persists new work
    heal.tree.insert(1_000_000, TID(9, 9))
    assert admit_group.sync_all() == []


# ---------------------------------------------------------------------------
# worker-pool interleaving
# ---------------------------------------------------------------------------

def test_worker_pool_interleaves_heal_units_with_foreground_ops():
    group, tree = build_group()
    crash_shards(group, tree, [0, 2])
    group2, report = admit(group)
    heal = report.heal
    with ShardWorkerPool(heal.tree) as pool:
        assert pool.heal is heal, "pool must adopt the attached queue"
        batch = [("lookup", k) for k in range(KEYS)]
        result = pool.run_batch(batch)
        assert result.ok, result.errors()[:3]
        assert all(r.result is not None for r in result.results)
        progress = heal.progress()
        for index in (0, 2):
            assert progress[index]["units_done"] > 0, (
                f"shard {index} paid no heal units across {KEYS} ops")
        # idle-time drain finishes whatever the interleaving left
        assert pool.run_heal() == []
    assert heal.healed
    assert fsck_group(group2).errors == 0


def test_run_heal_without_a_queue_is_a_no_op():
    group, tree = build_group()
    with ShardWorkerPool(tree) as pool:
        assert pool.heal is None
        assert pool.run_heal() == []


def test_unadmitted_dead_shard_stays_gated_while_siblings_serve():
    group, tree = build_group()
    crash_shards(group, tree, [1, 3])

    def refuse(index, engine):
        if index == 3:
            raise CrashError("admission denied by test")

    group2, report = admit(group, on_reopen=refuse)
    assert report.failed_shards() == [3]
    assert 3 in group2.crashed_shards()
    heal = report.heal
    assert heal.shard_indexes == [1], "only admitted shards heal"
    serving = heal.tree
    live_key = next(k for k in range(KEYS) if serving.shard_of(k) == 1)
    dead_key = next(k for k in range(KEYS) if serving.shard_of(k) == 3)
    assert serving.lookup(live_key) is not None
    with pytest.raises(EngineDeadError):
        serving.lookup(dead_key)
    heal.drain()
    assert heal.healed


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------

def test_admit_records_ttfq_and_full_heal_metrics():
    group, tree = build_group()
    crash_shards(group, tree, [0, 2])
    before = get_registry().snapshot()["histograms"]
    group2, report = admit(group)
    report.heal.drain()
    after = get_registry().snapshot()["histograms"]

    def grew(name):
        key = metric_key(name, {})
        return after.get(key, {}).get("count", 0) \
            - before.get(key, {}).get("count", 0)

    assert grew("shard.recovery.ttfq_seconds") == 2
    assert grew("shard.heal.full_heal_seconds") == 2


def test_heal_emits_progress_trace_events():
    group, tree = build_group()
    crash_shards(group, tree, [1])
    group2, report = admit(group)
    with scoped_trace() as log:
        report.heal.drain()
        events = log.events("heal_progress")
    assert events, "a full heal must emit heal_progress events"
    final = events[-1].detail
    assert final["shard"] == 1
    assert final["done"] is True and final["failed"] is False
    assert final["keys_seen"] > 0
    assert events[-1].duration is not None


def test_recover_group_wrapper_passes_admit_through():
    group, tree = build_group()
    crash_shards(group, tree, [2])
    group2, report = recover_group(group, "ix", admit_immediately=True)
    assert report.ok
    assert report.heal is not None
    assert report.heal.pending_shards() == [2]
    report.heal.drain()
    assert report.heal.healed
