"""Shutdown-ordering regressions for :class:`ShardWorkerPool`.

``close()`` racing ``run_heal``/``run_batch`` must never let a
submission land behind the shutdown sentinel — that strands the
submitter on a done-event no worker will ever set, leaking a parked
daemon thread.  The gate stub below pins each interleaving
deterministically instead of hoping a sleep loses the race.
"""

import threading

import pytest

from repro.errors import ReproError
from repro.shard import ShardedEngine, ShardWorkerPool

PAGE = 512


def make(n=4, seed=9):
    group = ShardedEngine.create(n, page_size=PAGE, seed=seed)
    tree = group.create_tree("shadow", "ix", codec="uint32")
    return group, tree


class GateHeal:
    """Heal stub whose probe and step park on events, so the test
    chooses exactly where ``close()`` lands in ``run_heal``'s window."""

    def __init__(self, shards=(0,)):
        self.shards = list(shards)
        self.probe_entered = threading.Event()
        self.probe_gate = threading.Event()
        self.step_entered = threading.Event()
        self.step_gate = threading.Event()
        self.steps = 0

    def pending_shards(self):
        self.probe_entered.set()
        assert self.probe_gate.wait(timeout=10)
        return list(self.shards)

    def step(self, shard_index, max_units=None):
        self.steps += 1
        self.step_entered.set()
        assert self.step_gate.wait(timeout=10)
        return False  # shard fully healed after one step

    def note_access(self, shard_index, key):
        return None


def test_close_during_pending_probe_rejects_instead_of_stranding():
    # close() lands between run_heal's pending_shards() probe and its
    # enqueue: the re-check under the lifecycle lock must raise rather
    # than queue heal items behind the shutdown sentinel
    group, tree = make()
    heal = GateHeal()
    pool = ShardWorkerPool(tree, heal=heal)
    outcome = {}

    def submit():
        try:
            outcome["result"] = pool.run_heal()
        except ReproError as exc:
            outcome["error"] = exc

    submitter = threading.Thread(target=submit, name="heal-submitter")
    submitter.start()
    assert heal.probe_entered.wait(timeout=10)
    pool.close()                       # wins the race: sentinels are in
    heal.probe_gate.set()              # let the probe return
    submitter.join(timeout=10)
    assert not submitter.is_alive(), "run_heal stranded past close()"
    assert "error" in outcome and "closed" in str(outcome["error"])
    assert heal.steps == 0, "no heal work may run after shutdown"
    assert all(not t.is_alive() for t in pool._threads)


def test_close_mid_heal_waits_for_the_drain():
    # close() while a worker is inside heal.step(): the sentinel queues
    # behind the in-flight item, the join (outside the lifecycle lock)
    # waits for the drain, and both close() and run_heal() return
    group, tree = make()
    heal = GateHeal()
    heal.probe_gate.set()
    pool = ShardWorkerPool(tree, heal=heal)
    outcome = {}

    def submit():
        outcome["result"] = pool.run_heal()

    submitter = threading.Thread(target=submit, name="heal-submitter")
    submitter.start()
    assert heal.step_entered.wait(timeout=10)   # worker is mid-heal
    closer = threading.Thread(target=pool.close, name="closer")
    closer.start()
    heal.step_gate.set()                        # release the worker
    submitter.join(timeout=10)
    closer.join(timeout=10)
    assert not submitter.is_alive() and not closer.is_alive()
    assert outcome["result"] == []
    assert heal.steps == 1
    assert all(not t.is_alive() for t in pool._threads)


def test_submissions_after_close_raise():
    group, tree = make()
    heal = GateHeal()
    heal.probe_gate.set()
    pool = ShardWorkerPool(tree, heal=heal)
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(ReproError):
        pool.run_heal()
    with pytest.raises(ReproError):
        pool.run_batch([("lookup", 1)])
    assert all(not t.is_alive() for t in pool._threads)
