"""Group-sync scheduling: pressure triggers, barrier windows, crash
bookkeeping."""

import pytest

from repro import TID, CrashError
from repro.obs import get_trace
from repro.shard import GroupSyncScheduler, ShardedEngine
from repro.storage import CrashOnNthSync, RandomSubsetCrash

PAGE = 512


def make(n=4, dirty_threshold=8, seed=5):
    group = ShardedEngine.create(n, page_size=PAGE, seed=seed)
    tree = group.create_tree("shadow", "ix", codec="uint32")
    scheduler = GroupSyncScheduler(group, dirty_threshold=dirty_threshold)
    return group, tree, scheduler


def test_pressure_syncs_only_the_hot_shard():
    group, tree, scheduler = make(dirty_threshold=6)
    hot = tree.shard_of(0)
    # drive keys at the hot shard only
    routed = [k for k in range(4000) if tree.shard_of(k) == hot]
    synced = False
    before = [s.stats_syncs for s in group.shards]
    for k in routed[:120]:
        tree.insert(k, TID(1, k % 100))
        synced = scheduler.note_op(hot) or synced
    assert synced, "threshold of 6 dirty frames must trip within 120 keys"
    after = [s.stats_syncs for s in group.shards]
    assert after[hot] > before[hot]
    for i in range(len(group)):
        if i != hot:
            assert after[i] == before[i], "idle siblings must not sync"


def test_note_op_below_threshold_does_nothing():
    group, tree, scheduler = make(dirty_threshold=10_000)
    tree.insert(1, TID(1, 1))
    assert scheduler.note_op(tree.shard_of(1)) is False


def test_barrier_skips_clean_shards():
    group, tree, scheduler = make()
    group.sync_all()  # flush creation-time dirt so the baseline is clean
    tree.insert(7, TID(1, 7))
    dirty_shard = tree.shard_of(7)
    before = [s.stats_syncs for s in group.shards]
    crashed = scheduler.sync_group()
    assert crashed == []
    after = [s.stats_syncs for s in group.shards]
    assert after[dirty_shard] == before[dirty_shard] + 1
    clean = [i for i in range(len(group)) if i != dirty_shard]
    assert all(after[i] == before[i] for i in clean)
    assert scheduler.window == 1


def test_barrier_isolates_and_records_crashes():
    group, tree, scheduler = make()
    for k in range(200):
        tree.insert(k, TID(1, k % 100))
    victim = 1
    group.shard(victim).crash_policy = CrashOnNthSync(1, keep=1)
    crashed = scheduler.sync_group()
    assert crashed == [victim]
    assert scheduler.crash_windows == {victim: 1}
    # siblings synced to completion inside the same window
    counts = group.dirty_page_counts()
    for i in group.live_shards():
        assert counts[i] == 0
    # the window closed and the next one opens past it
    assert scheduler.sync_group() == []
    assert scheduler.window == 2


def test_pressure_crash_propagates_to_owner():
    group, tree, scheduler = make(dirty_threshold=4)
    target = tree.shard_of(0)
    group.shard(target).crash_policy = RandomSubsetCrash(p=1.0, seed=2)
    routed = [k for k in range(4000) if tree.shard_of(k) == target]
    with pytest.raises(CrashError):
        for k in routed[:200]:
            tree.insert(k, TID(1, k % 100))
            scheduler.note_op(target)
    assert group.shard(target).dead


def test_pressure_crash_lands_in_crash_windows():
    group, tree, scheduler = make(dirty_threshold=4)
    # close one barrier window first so the attribution is non-trivial
    assert scheduler.sync_group() == []
    assert scheduler.window == 1
    target = tree.shard_of(0)
    group.shard(target).crash_policy = RandomSubsetCrash(p=1.0, seed=3)
    routed = [k for k in range(4000) if tree.shard_of(k) == target]
    with pytest.raises(CrashError):
        for k in routed[:200]:
            tree.insert(k, TID(1, k % 100))
            scheduler.note_op(target)
    # the crash is attributed to the open interval the next barrier
    # would close — same ordinal a barrier crash would have recorded
    assert scheduler.crash_windows == {target: scheduler.window + 1}


def test_pressure_counter_ignores_syncs_that_crashed():
    from repro.obs import get_registry, metric_key

    key = metric_key("shard.sync.triggered", {"reason": "pressure"})

    group, tree, scheduler = make(dirty_threshold=4)
    target = tree.shard_of(0)
    group.shard(target).crash_policy = RandomSubsetCrash(p=1.0, seed=7)
    before = get_registry().snapshot()["counters"].get(key, 0)
    routed = [k for k in range(4000) if tree.shard_of(k) == target]
    with pytest.raises(CrashError):
        for k in routed[:200]:
            tree.insert(k, TID(1, k % 100))
            scheduler.note_op(target)
    after = get_registry().snapshot()["counters"].get(key, 0)
    assert after == before, \
        "a pressure sync that crashed never completed; it must not count"


def test_group_sync_emits_trace_events():
    group, tree, scheduler = make()
    tree.insert(3, TID(1, 3))
    scheduler.sync_group()
    events = [e for e in get_trace().events() if e.etype == "group_sync"]
    assert events, "barrier must emit a group_sync event"
    detail = events[-1].detail
    assert detail["window"] == scheduler.window
    assert detail["crashed"] == []


# ---------------------------------------------------------------------------
# group-commit bookkeeping and the owner-thread barrier
# ---------------------------------------------------------------------------

def test_barrier_records_commit_occupancy():
    group, tree, scheduler = make()
    tree.insert(5, TID(1, 5))
    scheduler.sync_group(commits=3)
    assert scheduler.commits_coalesced == 3
    assert scheduler.commit_windows == 1
    assert scheduler.amortization == 3.0
    # a plain barrier (no commits riding it) leaves the ratio alone
    tree.insert(6, TID(1, 6))
    scheduler.sync_group()
    assert scheduler.commit_windows == 1
    assert scheduler.amortization == 3.0
    tree.insert(7, TID(1, 7))
    scheduler.sync_group(commits=1)
    assert scheduler.amortization == 2.0


def test_parallel_barrier_matches_the_sequential_one():
    from repro.shard import ShardWorkerPool

    seq = make(seed=21)
    par = make(seed=21)
    for group, tree, scheduler in (seq, par):
        for k in range(150):
            tree.insert(k, TID(1, k % 100))
    seq[2].sync_group(commits=2)
    with ShardWorkerPool(par[1]) as pool:
        assert par[2].sync_group_parallel(pool, commits=2) == []
    for (g1, _, s1), (g2, _, s2) in ((seq, par),):
        assert s1.window == s2.window == 1
        assert s1.commits_coalesced == s2.commits_coalesced == 2
        assert g1.dirty_page_counts() == g2.dirty_page_counts()
        assert [e.stats_syncs for e in g1.shards] == \
            [e.stats_syncs for e in g2.shards]


def test_parallel_barrier_isolates_and_records_crashes():
    from repro.shard import ShardWorkerPool

    group, tree, scheduler = make()
    for k in range(200):
        tree.insert(k, TID(1, k % 100))
    victim = 1
    group.shard(victim).crash_policy = CrashOnNthSync(1, keep=1)
    with ShardWorkerPool(tree) as pool:
        crashed = scheduler.sync_group_parallel(pool)
        assert crashed == [victim]
        assert scheduler.crash_windows == {victim: 1}
        counts = group.dirty_page_counts()
        for i in group.live_shards():
            assert counts[i] == 0, "siblings must finish their syncs"
        # the next window opens past the crash, skipping the dead shard
        assert scheduler.sync_group_parallel(pool) == []
        assert scheduler.window == 2
