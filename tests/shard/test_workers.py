"""Worker-pool semantics: order, routing, per-op errors, crash
isolation."""

import pytest

from repro import TID
from repro.errors import ReproError
from repro.shard import GroupSyncScheduler, ShardedEngine, ShardWorkerPool
from repro.storage import RandomSubsetCrash

PAGE = 512


def make(n=4, seed=9):
    group = ShardedEngine.create(n, page_size=PAGE, seed=seed)
    tree = group.create_tree("shadow", "ix", codec="uint32")
    return group, tree


def test_batch_results_in_submission_order():
    group, tree = make()
    ops = [("insert", k, TID(1, k % 100)) for k in range(100)]
    with ShardWorkerPool(tree) as pool:
        report = pool.run_batch(ops)
    assert report.ok
    assert [r.index for r in report.results] == list(range(100))
    assert [r.value for r in report.results] == list(range(100))
    assert sum(report.per_shard_ops) == 100
    assert all(r.shard == tree.shard_of(r.value) for r in report.results)


def test_mixed_batch_and_lookup_results():
    group, tree = make()
    with ShardWorkerPool(tree) as pool:
        pool.run_batch([("insert", k, TID(1, k % 100))
                        for k in range(50)])
        report = pool.run_batch(
            [("lookup", k) for k in range(60)]
            + [("delete", 10), ("lookup", 10)])
    hits = [r for r in report.results if r.op == "lookup" and
            r.result is not None]
    # the 50 inserted keys are found (including key 10, looked up before
    # its delete); 50..59 miss; the post-delete lookup of key 10 runs
    # after the delete (same shard => same worker, FIFO) and misses
    assert len(hits) == 50
    assert report.results[-1].result is None


def test_per_op_errors_do_not_stop_the_shard():
    group, tree = make()
    with ShardWorkerPool(tree) as pool:
        pool.run_batch([("insert", 1, TID(1, 1))])
        report = pool.run_batch([
            ("insert", 1, TID(1, 1)),     # duplicate
            ("delete", 999),              # missing
            ("insert", 2, TID(1, 2)),     # fine
        ])
    assert not report.ok
    assert report.crashed_shards == []
    errors = report.errors()
    assert len(errors) == 2
    assert "DuplicateKeyError" in errors[0].error
    assert "KeyNotFoundError" in errors[1].error
    assert tree.lookup(2) is not None


def test_malformed_op_rejected():
    group, tree = make()
    with ShardWorkerPool(tree) as pool:
        with pytest.raises(ReproError):
            pool.run_batch([("upsert", 1, TID(1, 1))])


def test_closed_pool_rejects_batches():
    group, tree = make()
    pool = ShardWorkerPool(tree)
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(ReproError):
        pool.run_batch([("lookup", 1)])


def test_crash_mid_batch_isolates_one_shard():
    group, tree = make()
    scheduler = GroupSyncScheduler(group, dirty_threshold=4)
    victim = tree.shard_of(0)
    group.shard(victim).crash_policy = RandomSubsetCrash(p=1.0, seed=3)
    ops = [("insert", k, TID(1, k % 100)) for k in range(600)]
    with ShardWorkerPool(tree, scheduler=scheduler) as pool:
        report = pool.run_batch(ops)
    assert report.crashed_shards == [victim]
    assert not report.ok
    # every op routed to the victim after the crash carries an error;
    # every sibling op succeeded
    for r in report.results:
        if r.shard != victim:
            assert r.ok, r.error
    victim_errors = [r for r in report.results
                     if r.shard == victim and not r.ok]
    assert victim_errors, "the crash must surface in the results"
    assert group.shard(victim).dead
    assert set(group.live_shards()) == \
        set(range(len(group))) - {victim}


def test_batch_to_unrecovered_shard_reports_dead():
    group, tree = make()
    scheduler = GroupSyncScheduler(group, dirty_threshold=4)
    victim = tree.shard_of(0)
    group.shard(victim).crash_policy = RandomSubsetCrash(p=1.0, seed=3)
    with ShardWorkerPool(tree, scheduler=scheduler) as pool:
        pool.run_batch([("insert", k, TID(1, k % 100))
                        for k in range(600)])
        # second batch: the victim is dead from the start
        report = pool.run_batch([("lookup", k) for k in range(40)])
    for r in report.results:
        if r.shard == victim:
            assert not r.ok and "dead" in r.error
        else:
            assert r.ok


# ---------------------------------------------------------------------------
# submit(): the serving layer's owner-thread building block
# ---------------------------------------------------------------------------

def test_submit_runs_fifo_on_the_owner_thread():
    import threading

    group, tree = make()
    order = []
    names = set()

    def step(i):
        def run():
            order.append(i)
            names.add(threading.current_thread().name)
        return run

    with ShardWorkerPool(tree) as pool:
        waits = [pool.submit(0, step(i)) for i in range(20)]
        for done, errbox in waits:
            assert done.wait(timeout=10)
            assert "error" not in errbox
    assert order == list(range(20)), "submissions must drain FIFO"
    assert len(names) == 1, "one shard means exactly one owner thread"


def test_submit_captures_errors_and_the_worker_survives():
    group, tree = make()
    with ShardWorkerPool(tree) as pool:
        def boom():
            raise ValueError("deliberate")
        done, errbox = pool.submit(0, boom)
        assert done.wait(timeout=10)
        assert isinstance(errbox["error"], ValueError)
        # the owner thread survived the escape and keeps serving
        done2, errbox2 = pool.submit(0, lambda: None)
        assert done2.wait(timeout=10)
        assert "error" not in errbox2


def test_submit_after_close_raises():
    group, tree = make()
    pool = ShardWorkerPool(tree)
    pool.close()
    with pytest.raises(ReproError):
        pool.submit(0, lambda: None)
