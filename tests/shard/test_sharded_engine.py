"""ShardedEngine / ShardedTree behavior: routing, merging, failure
isolation, lifecycle."""

import pytest

from repro import TID, CrashError
from repro.errors import ReproError
from repro.shard import ShardedEngine
from repro.storage import RandomSubsetCrash, StorageEngine
from repro.storage.engine import EngineDeadError

PAGE = 512


def make_group(n=4, keys=200, kind="shadow", seed=3):
    group = ShardedEngine.create(n, page_size=PAGE, seed=seed)
    tree = group.create_tree(kind, "ix", codec="uint32")
    for k in range(keys):
        tree.insert(k, TID(1, k % 100))
        if (k + 1) % 64 == 0:
            group.sync_all()
    group.sync_all()
    return group, tree


def crash_shard(group, index, seed=7):
    engine = group.shard(index)
    engine.crash_policy = RandomSubsetCrash(p=1.0, seed=seed)
    # ensure the sync batch is non-empty so the policy has pages to drop
    with pytest.raises(CrashError):
        engine.sync()
    assert engine.dead and not engine.clean_shutdown


def test_group_needs_at_least_one_shard():
    with pytest.raises(ReproError):
        ShardedEngine([])


def test_shards_have_independent_sync_domains():
    group, tree = make_group(3, keys=150)
    counters = [s.sync_state.counter for s in group.shards]
    group.sync_shard(0)
    after = [s.sync_state.counter for s in group.shards]
    assert after[1] == counters[1] and after[2] == counters[2]


def test_routed_operations_and_global_scan():
    group, tree = make_group(4, keys=300)
    for k in range(300):
        assert tree.lookup(k) is not None
    scanned = [k for k, _ in tree.range_scan()]
    assert scanned == sorted(scanned)
    assert len(scanned) == 300
    # bounded scan merges only the requested window (hi exclusive)
    window = [k for k, _ in tree.range_scan(50, 60)]
    assert window == list(range(50, 60))
    tree.delete(123)
    assert tree.lookup(123) is None
    assert len(tree.check()) == 299
    group.shutdown()


def test_keys_actually_spread_over_shards():
    group, tree = make_group(4, keys=400)
    counts = tree.key_distribution(range(400))
    assert all(c > 0 for c in counts)
    assert sum(counts) == 400
    group.shutdown()


def test_crash_isolated_to_one_shard():
    group, tree = make_group(4, keys=240)
    victim = 2
    # dirty every shard so the victim's crash batch is non-empty
    for k in range(240, 300):
        tree.insert(k, TID(2, k % 100))
    crash_shard(group, victim)
    assert group.crashed_shards() == [victim]
    assert sorted(group.live_shards() + [victim]) == [0, 1, 2, 3]

    reopened = group.open_tree("ix")
    dead_hits, served = 0, 0
    for k in range(240):
        try:
            assert reopened.lookup(k) is not None
            served += 1
        except EngineDeadError:
            dead_hits += 1
    assert dead_hits > 0 and served > 0
    with pytest.raises(EngineDeadError):
        list(reopened.range_scan())


def test_sync_all_survives_a_crashing_shard():
    group, tree = make_group(4, keys=200)
    for k in range(200, 260):
        tree.insert(k, TID(2, k % 100))
    group.shard(1).crash_policy = RandomSubsetCrash(p=1.0, seed=9)
    crashed = group.sync_all()
    assert crashed == [1]
    assert set(group.live_shards()) == {0, 2, 3}
    # the survivors' syncs completed: their dirty counts dropped to zero
    assert group.dirty_page_counts()[0] == 0
    assert group.dirty_page_counts()[2] == 0


def test_open_tree_requires_a_live_shard():
    group, tree = make_group(2, keys=100)
    for k in range(100, 160):
        tree.insert(k, TID(2, k % 100))
    for i in range(2):
        crash_shard(group, i, seed=11 + i)
    with pytest.raises(EngineDeadError):
        group.open_tree("ix")


def test_group_shutdown_is_idempotent():
    group, tree = make_group(2, keys=80)
    tree.close_clean()
    group.shutdown()
    group.shutdown()  # second call is a no-op
    assert all(s.clean_shutdown for s in group.shards)


def test_group_shutdown_refuses_crashed_shard():
    group, tree = make_group(2, keys=80)
    for k in range(80, 140):
        tree.insert(k, TID(2, k % 100))
    crash_shard(group, 0)
    with pytest.raises(EngineDeadError):
        group.shutdown()


def test_clean_group_reopen_round_trip():
    group, tree = make_group(3, keys=150)
    tree.close_clean()
    group.shutdown()
    group2 = ShardedEngine.reopen(group)
    tree2 = group2.open_tree("ix")
    assert [k for k, _ in tree2.range_scan()] == list(range(150))
    group2.shutdown()


def test_create_tree_kind_round_trips_through_meta():
    """open_tree dispatches on the durable meta kind, so a reorg group
    reopens as reorg trees without the caller naming the kind."""
    group, tree = make_group(2, keys=120, kind="reorg")
    tree.close_clean()
    group.shutdown()
    group2 = ShardedEngine.reopen(group)
    tree2 = group2.open_tree("ix")
    assert all(t.KIND == "reorg" for t in tree2.trees)
    assert sum(1 for _ in tree2.range_scan()) == 120
    group2.shutdown()


def test_per_shard_seeds_differ():
    group = ShardedEngine.create(4, page_size=PAGE, seed=1)
    seeds = {s._seed for s in group.shards}
    assert len(seeds) == 4
