"""The Section 1 generalization claim as a benchmark: the shadow
technique carried to extendible hashing and R-trees survives the same
randomized crash campaign as the B-link trees, with zero committed-key
loss."""

import random

import pytest

from repro import (
    CrashError,
    ExtendibleHashIndex,
    RandomSubsetCrash,
    Rect,
    RTreeIndex,
    StorageEngine,
    TID,
)


def test_hash_crash_campaign(benchmark):
    def campaign():
        crashes = recovered = 0
        for seed in range(15):
            engine = StorageEngine.create(page_size=512, seed=seed)
            ix = ExtendibleHashIndex.create(engine, "h", codec="uint32")
            engine.crash_policy = RandomSubsetCrash(p=0.25,
                                                    seed=seed * 3 + 1)
            committed, pending, crashed = set(), [], False
            i = 0
            while i < 350 and not crashed:
                try:
                    ix.insert(i, TID(1, i % 100))
                    pending.append(i)
                    i += 1
                    if i % 25 == 0:
                        engine.sync()
                        committed.update(pending)
                        pending = []
                except CrashError:
                    crashed = True
            if not crashed:
                continue
            crashes += 1
            engine2 = StorageEngine.reopen_after_crash(engine)
            ix2 = ExtendibleHashIndex.open(engine2, "h")
            if all(ix2.lookup(k) is not None for k in committed):
                recovered += 1
        return crashes, recovered

    crashes, recovered = benchmark.pedantic(campaign, rounds=1,
                                            iterations=1)
    benchmark.extra_info["crashes"] = crashes
    assert crashes >= 8
    assert recovered == crashes


def test_rtree_crash_campaign(benchmark):
    def campaign():
        crashes = recovered = 0
        for seed in range(15):
            rng = random.Random(seed)
            engine = StorageEngine.create(page_size=512, seed=seed)
            rt = RTreeIndex.create(engine, "r")
            engine.crash_policy = RandomSubsetCrash(p=0.25,
                                                    seed=seed * 5 + 2)
            committed, pending, crashed = [], [], False
            i = 0
            while i < 350 and not crashed:
                x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
                rect = Rect(x, y, x + rng.uniform(1, 20),
                            y + rng.uniform(1, 20))
                tid = TID(1 + (i >> 8), i & 0xFF)
                try:
                    rt.insert(rect, tid)
                    pending.append((rect, tid))
                    i += 1
                    if i % 25 == 0:
                        engine.sync()
                        committed.extend(pending)
                        pending = []
                except CrashError:
                    crashed = True
            if not crashed:
                continue
            crashes += 1
            engine2 = StorageEngine.reopen_after_crash(engine)
            rt2 = RTreeIndex.open(engine2, "r")
            if all((rect, tid) in rt2.search(rect)
                   for rect, tid in committed):
                recovered += 1
        return crashes, recovered

    crashes, recovered = benchmark.pedantic(campaign, rounds=1,
                                            iterations=1)
    benchmark.extra_info["crashes"] = crashes
    assert crashes >= 8
    assert recovered == crashes
