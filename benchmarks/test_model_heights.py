"""Section 5: the tree-height analysis, regenerated and asserted.

Not a timing table in the paper but an analytic "figure"; the benchmark
times the sweep and asserts the two claims its text states.
"""

import pytest

from repro.bench import heights


def test_section5_height_analysis(benchmark):
    data = benchmark.pedantic(heights.run, rounds=1, iterations=1,
                              kwargs={"page_size": 8192, "fill": 0.5})
    # claim: "the heights of larger normal and shadow B-link-trees will
    # coincide for most index sizes"
    assert all(fraction > 0.9 for fraction in data["coincide"].values())
    # claim: four-byte keys hit the 2 GB file limit before five levels
    assert data["at_limit"][4]["normal"] < 5
    assert data["at_limit"][4]["shadow"] < 5
    benchmark.extra_info["coincide_4B"] = data["coincide"][4]
    benchmark.extra_info["keys_at_2gb"] = data["keys_at_2gb_4byte"]


def test_model_validated_against_built_trees(benchmark):
    from repro.model import measure_tree
    from repro.workload import ascending

    def validate():
        out = {}
        for kind in ("normal", "shadow", "reorg"):
            measured = measure_tree(kind, ascending(3000), page_size=1024)
            out[kind] = (measured.height, measured.model_height)
        return out

    result = benchmark.pedantic(validate, rounds=1, iterations=1)
    for kind, (built, modeled) in result.items():
        assert abs(built - modeled) <= 1, kind
