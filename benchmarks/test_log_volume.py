"""Section 4 ablation: physical vs logical index logging volume."""

import pytest

from repro.bench import logvolume


def test_log_volume_comparison(benchmark):
    data = benchmark.pedantic(logvolume.run, rounds=1, iterations=1,
                              kwargs={"n": 6000, "page_size": 2048})
    benchmark.extra_info["ratio"] = round(data["ratio"], 2)
    benchmark.extra_info["phys_bytes"] = data["phys_bytes"]
    benchmark.extra_info["logi_bytes"] = data["logi_bytes"]
    # "would make the write-ahead log more compact"
    assert data["ratio"] > 1.5
    # "prevent B-tree keys corrupted by software errors from propagating
    # into the log"
    assert data["phys_poisoned"] > 0
    assert data["logi_poisoned"] == 0
