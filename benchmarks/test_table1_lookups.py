"""Table 1, lookup rows: probe each built index with uniformly random
keys (the paper's 8,000-lookup test).

Paper shape: the recoverable trees cost a few percent over the baseline —
"the added expense of verifying inter-page links in traversing the tree".
"""

import pytest

from repro.workload import run_lookups, uniform_lookups

from conftest import LOOKUPS, TABLE1_SIZES

KINDS = ("normal", "reorg", "shadow", "hybrid")


@pytest.mark.parametrize("size", TABLE1_SIZES)
@pytest.mark.parametrize("kind", KINDS)
def test_uniform_lookups(benchmark, built_trees, kind, size):
    tree = built_trees[(kind, size)]
    probes = uniform_lookups(LOOKUPS, size, seed=1)

    def probe_all():
        return run_lookups(tree, probes)

    result = benchmark.pedantic(probe_all, rounds=3, iterations=1)
    benchmark.extra_info["kind"] = kind
    benchmark.extra_info["size"] = size
    benchmark.extra_info["hits"] = result.extra["hits"]
    assert result.extra["hits"] == LOOKUPS   # every probe is in range
