"""Shared configuration for the benchmark suite.

Sizes default to a laptop-friendly scale; set ``REPRO_BENCH_SCALE=paper``
to run the paper's exact 10k/20k/40k inserts and 8,000 lookups.
"""

from __future__ import annotations

import os

import pytest

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")

if SCALE == "paper":
    TABLE1_SIZES = [10_000, 20_000, 40_000]
    LOOKUPS = 8_000
else:
    TABLE1_SIZES = [2_000, 4_000, 8_000]
    LOOKUPS = 2_000

PAGE_SIZE = 8192


@pytest.fixture(scope="session")
def table1_sizes():
    return TABLE1_SIZES


@pytest.fixture(scope="session")
def lookup_count():
    return LOOKUPS


@pytest.fixture(scope="session")
def built_trees(table1_sizes):
    """Indexes built once per session for the lookup benchmarks."""
    from repro.workload import ascending, build_tree
    trees = {}
    for kind in ("normal", "reorg", "shadow", "hybrid"):
        for size in table1_sizes:
            _, tree = build_tree(kind, ascending(size),
                                 page_size=PAGE_SIZE)
            trees[(kind, size)] = tree
    return trees
