"""Table 1, insert rows: build an index of four-byte keys in ascending
order (worst-case split behaviour) for each tree kind and size.

Paper shape to reproduce: normal fastest; shadow within a few percent;
page reorganization slightly above shadow on inserts ("extra work must be
done to order data on old pages during splits").  Absolute times differ
(Python vs 1992 C on a DECstation); the normalized ordering is the claim.
"""

import pytest

from repro.workload import ascending, build_tree

from conftest import PAGE_SIZE, TABLE1_SIZES

KINDS = ("normal", "reorg", "shadow", "hybrid")


@pytest.mark.parametrize("size", TABLE1_SIZES)
@pytest.mark.parametrize("kind", KINDS)
def test_insert_build(benchmark, kind, size):
    def build():
        result, tree = build_tree(kind, ascending(size),
                                  page_size=PAGE_SIZE)
        return result, tree

    result, tree = benchmark.pedantic(build, rounds=2, iterations=1)
    benchmark.extra_info["kind"] = kind
    benchmark.extra_info["size"] = size
    benchmark.extra_info["am_seconds"] = result.am_seconds
    benchmark.extra_info["splits"] = result.splits
    benchmark.extra_info["height"] = result.height
    assert result.n_ops == size
    assert tree.height >= 2
