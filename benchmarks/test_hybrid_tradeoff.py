"""The hybrid tree's promised trade (paper Section 1).

"Using shadow paging near the leaf pages where splits are most common
would improve split performance; using page reorganization nearer the
root would reduce space overhead."
"""

import pytest

from repro.core import items as I
from repro.core.nodeview import NodeView
from repro.model import measure_tree
from repro.workload import random_permutation

PAGE = 1024
N = 6000


def internal_item_overhead(tree):
    """Mean internal item size above level 1 — where the hybrid saves the
    prevPtr four bytes."""
    sizes = []
    stack = [tree._root_page()]
    file = tree.file
    while stack:
        page_no = stack.pop()
        buf = file.pin(page_no)
        try:
            view = NodeView(buf.data, tree.page_size)
            if view.is_leaf:
                continue
            if view.level >= 2:
                for i in range(view.n_keys):
                    sizes.append(len(view.item_bytes_at(i)))
            stack.extend(view.child_at(i) for i in range(view.n_keys))
        finally:
            file.unpin(buf)
    return sum(sizes) / len(sizes) if sizes else 0.0


def build(kind):
    from repro.model import measure_tree as _measure
    keys = random_permutation(N, seed=11)
    from repro import StorageEngine, TREE_CLASSES, TID
    engine = StorageEngine.create(page_size=PAGE, seed=7)
    tree = TREE_CLASSES[kind].create(engine, "ix", codec="uint32")
    for count, key in enumerate(keys):
        tree.insert(key, TID(1 + (count >> 8), count & 0xFF))
        if (count + 1) % 512 == 0:
            engine.sync()
    engine.sync()
    return tree


def test_hybrid_space_vs_shadow(benchmark):
    trees = benchmark.pedantic(
        lambda: {k: build(k) for k in ("shadow", "hybrid", "reorg")},
        rounds=1, iterations=1)
    shadow, hybrid = trees["shadow"], trees["hybrid"]
    if shadow.height >= 3:
        # above level 1 the hybrid's items are four bytes slimmer
        assert internal_item_overhead(hybrid) < \
            internal_item_overhead(shadow)
    # and it stalls far less than pure reorg on the same random load
    assert hybrid.stats_sync_stalls <= trees["reorg"].stats_sync_stalls
    benchmark.extra_info["hybrid_stalls"] = hybrid.stats_sync_stalls
    benchmark.extra_info["reorg_stalls"] = trees["reorg"].stats_sync_stalls
