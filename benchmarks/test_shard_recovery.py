"""Parallel recovery scaling: the sharded-group restart claim.

Shards share no durable state and no sync-token domain, so N crashed
shards can drive their first-use repairs concurrently; group restart
time should approach the slowest shard's cost rather than the sum.
With simulated per-page I/O latency (the sleeps release the GIL) the
4-shard parallel restart must beat the serial baseline.
"""

import pytest

from repro.bench.shardrecovery import (
    _set_latency,
    _snapshot,
    build_crashed_group,
    measure_mode,
)

KEYS = 600
PAGE = 512
READ_LATENCY = 0.001


@pytest.fixture(scope="module")
def crashed_group():
    group = build_crashed_group(4, total_keys=KEYS, page_size=PAGE,
                                seed=5)
    _set_latency(group, READ_LATENCY, READ_LATENCY / 2)
    return group, _snapshot(group)


def test_parallel_beats_serial_at_four_shards(crashed_group):
    group, snaps = crashed_group
    serial = measure_mode(group, snaps, mode="serial", workers=1,
                          committed=KEYS, reps=2)
    parallel = measure_mode(group, snaps, mode="parallel", workers=4,
                            committed=KEYS, reps=2)
    # measure_mode raises if any committed key is lost
    assert serial.keys_verified == parallel.keys_verified == KEYS
    assert parallel.seconds < serial.seconds, (
        f"parallel {parallel.seconds:.4f}s not faster than "
        f"serial {serial.seconds:.4f}s at 4 shards")


def test_parallel_restart_benchmark(crashed_group, benchmark):
    group, snaps = crashed_group
    result = benchmark.pedantic(
        lambda: measure_mode(group, snaps, mode="parallel", workers=4,
                             committed=KEYS, reps=1),
        rounds=2, iterations=1)
    assert result.keys_verified == KEYS
    assert result.repairs >= 0
