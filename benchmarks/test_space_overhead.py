"""Space-overhead ablation: shadow prevPtr fanout cost, reorg backups,
and the Section 5 conclusion that tree heights coincide anyway."""

import pytest

from repro.bench import space


def test_space_overhead(benchmark):
    rows = benchmark.pedantic(space.run, rounds=1, iterations=1,
                              kwargs={"n": 8000, "page_size": 2048,
                                      "key_sizes": (4,)})
    by_kind = {r["kind"]: r for r in rows}
    normal, shadow = by_kind["normal"], by_kind["shadow"]
    reorg = by_kind["reorg"]
    benchmark.extra_info["normal_pages"] = normal["file_pages"]
    benchmark.extra_info["shadow_pages"] = shadow["file_pages"]
    # the Section 5 punchline: same height despite the prevPtr overhead
    assert shadow["height"] == normal["height"]
    # gross file churn is the shadow cost the paper concedes
    assert shadow["file_pages"] >= normal["file_pages"]
    # reorg keeps traditional fanout: file size tracks the baseline
    assert reorg["file_pages"] <= normal["file_pages"] * 1.2
