"""Reorg block-for-sync ablation (Section 3.4 reclamation case 1).

"The page reorganization scheme ... performs poorly when the same index
page splits many times during the same transaction."
"""

import pytest

from repro.bench import stalls


def test_reorg_stall_ablation(benchmark):
    rows = benchmark.pedantic(
        stalls.run, rounds=1, iterations=1,
        kwargs={"n": 4000, "page_size": 1024, "intervals": (100, 4000)})
    by = {(r["kind"], r["sync_every"]): r for r in rows}
    benchmark.extra_info["reorg_forced_syncs_long_txn"] = \
        by[("reorg", 4000)]["forced_syncs"]
    # only the reorg tree ever blocks for a sync
    assert by[("reorg", 4000)]["forced_syncs"] > 0
    assert by[("shadow", 4000)]["forced_syncs"] == 0
    assert by[("normal", 4000)]["forced_syncs"] == 0
    # longer transactions (rarer commits) stall more
    assert by[("reorg", 4000)]["forced_syncs"] >= \
        by[("reorg", 100)]["forced_syncs"]
    # the hybrid moves the hot leaf splits to shadow paging: far fewer
    # stalls than pure reorg under the same workload
    assert by[("hybrid", 4000)]["forced_syncs"] < \
        by[("reorg", 4000)]["forced_syncs"]
