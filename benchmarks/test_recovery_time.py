"""Restart-time ablation: the paper's motivating claim.

"Data availability improves because the DBMS can restart after a failure
in seconds.  The database is always consistent without log processing, so
restart need only initialize in-memory data structures."

Compared here: reopening a crashed no-WAL index (lazy repair on first
use) versus rebuilding the same index by full log redo — what a
checkpoint-less WAL system would pay at restart.
"""

import pytest

from repro import (
    CrashError,
    RandomSubsetCrash,
    StorageEngine,
    ShadowBLinkTree,
    TID,
)
from repro.wal import LogicalLoggingTree, RecordKind, logical_redo

N = 4_000
PAGE = 2048


def crashed_engine(seed=3):
    engine = StorageEngine.create(page_size=PAGE, seed=seed)
    tree = ShadowBLinkTree.create(engine, "ix", codec="uint32")
    log_tree = LogicalLoggingTree(tree)
    for i in range(N):
        log_tree.current_xid = 1 + i // 100
        log_tree.insert(i, TID(1 + (i >> 8), i & 0xFF))
        if (i + 1) % 100 == 0:
            log_tree.log.append(log_tree.current_xid,
                                RecordKind.COMMIT, b"")
            engine.sync()
    engine.crash_policy = RandomSubsetCrash(p=1.0, seed=seed)
    try:
        for i in range(N, N + 50):
            log_tree.current_xid += 1
            log_tree.insert(i, TID(1, 1))
        engine.sync()
    except CrashError:
        pass
    return engine, log_tree.log


def test_no_wal_restart(benchmark):
    """Restart = reopen + first lookup; no log is read."""
    engine, _log = crashed_engine()

    def restart():
        # disk stats persist across reopens; count only this restart
        before = sum(d.stats.reads for d in engine._disks.values())
        engine2 = StorageEngine.reopen_after_crash(engine)
        tree2 = ShadowBLinkTree.open(engine2, "ix")
        assert tree2.lookup(N // 2) is not None
        return sum(d.stats.reads
                   for d in engine2._disks.values()) - before

    reads = benchmark.pedantic(restart, rounds=3, iterations=1)
    benchmark.extra_info["pages_read_at_restart"] = reads
    assert reads < 40   # a handful of pages, not the database


def test_wal_style_full_redo(benchmark):
    """The comparison point: rebuild the index by replaying the log."""
    engine, log = crashed_engine()

    def full_redo():
        fresh_engine = StorageEngine.create(page_size=PAGE, seed=99)
        fresh = ShadowBLinkTree.create(fresh_engine, "redo")
        stats = logical_redo(log, fresh)
        return stats.applied

    applied = benchmark.pedantic(full_redo, rounds=1, iterations=1)
    benchmark.extra_info["records_replayed"] = applied
    assert applied >= N * 0.9
