"""Recovery-correctness campaign as a benchmark: crash rate, repair
counts, restart cost, and the baseline contrast."""

import pytest

from repro.bench.recovery import campaign


@pytest.mark.parametrize("kind", ["shadow", "reorg", "hybrid"])
def test_recoverable_campaign(benchmark, kind):
    result = benchmark.pedantic(
        campaign, rounds=1, iterations=1,
        kwargs={"kind": kind, "runs": 15, "n": 400, "page_size": 512})
    benchmark.extra_info["crashes"] = result.crashes
    benchmark.extra_info["repairs"] = dict(result.repairs)
    benchmark.extra_info["repair_us_avg"] = {
        k: round(1e6 * v / result.repairs[k], 1)
        for k, v in result.repair_seconds.items() if result.repairs.get(k)}
    benchmark.extra_info["mean_restart_ms"] = round(
        result.mean_restart_ms, 2)
    assert result.crashes >= 8
    assert result.lost_data == 0
    assert result.corrupt == 0
    assert result.recovered == result.crashes


def test_baseline_campaign(benchmark):
    result = benchmark.pedantic(
        campaign, rounds=1, iterations=1,
        kwargs={"kind": "normal", "runs": 15, "n": 400, "page_size": 512})
    benchmark.extra_info["crashes"] = result.crashes
    benchmark.extra_info["failures"] = result.lost_data + result.corrupt
    assert result.crashes >= 8
    assert result.lost_data + result.corrupt > 0
