PYTHONPATH := src
export PYTHONPATH

.PHONY: check lint races test test-sanitized

check:
	sh scripts/check.sh

lint:
	python -m repro.tools.lint src/ tests/ benchmarks/

races:
	python -m repro.tools.races --seeds 3

test:
	python -m pytest -x -q

test-sanitized:
	REPRO_SANITIZE=1 python -m pytest -x -q
