PYTHONPATH := src
export PYTHONPATH

.PHONY: check lint test test-sanitized

check:
	sh scripts/check.sh

lint:
	python -m repro.tools.lint src/

test:
	python -m pytest -x -q

test-sanitized:
	REPRO_SANITIZE=1 python -m pytest -x -q
