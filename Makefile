PYTHONPATH := src
export PYTHONPATH

.PHONY: check flow hotpath instantrestart lint races serving shard \
	test test-sanitized threads walreplay

check:
	sh scripts/check.sh

flow:
	python -m repro.tools.lint src/ tests/ benchmarks/ --engine=flow

threads:
	python -m repro.tools.lint src/ tests/ benchmarks/ --engine=threads

lint:
	python -m repro.tools.lint src/ tests/ benchmarks/

races:
	python -m repro.tools.races --seeds 3

serving:
	python -m pytest -x -q tests/serve
	python -m repro.bench.serving --smoke --json > BENCH_serving.json

shard:
	python -m pytest -x -q tests/shard \
		tests/recovery/test_shard_crash_during_recovery.py
	python -m repro.bench.shardrecovery --smoke --json \
		> BENCH_shard_recovery.json

hotpath:
	python -m pytest -x -q tests/fastpath
	python -m repro.bench.hotpath --smoke --json > BENCH_hotpath.json

instantrestart:
	python -m pytest -x -q tests/shard/test_instant_restart.py
	python -m repro.bench.instantrestart --smoke --json \
		> BENCH_instant_restart.json

walreplay:
	python -m pytest -x -q tests/wal \
		tests/recovery/test_recrash_during_replay.py
	python -m repro.bench.logvolume --matrix --smoke --json \
		> BENCH_wal_replay.json

test:
	python -m pytest -x -q

test-sanitized:
	REPRO_SANITIZE=1 python -m pytest -x -q
