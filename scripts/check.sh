#!/usr/bin/env sh
# Full pre-merge gate: crash-safety lint, external linters (when
# installed), and the tier-1 suite under the runtime sanitizer.
#
# Usage: scripts/check.sh  (or: make check)
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH=src
export PYTHONPATH

echo "==> crash-safety lint, pattern rules (python -m repro.tools.lint)"
python -m repro.tools.lint src/ tests/ benchmarks/ --engine=pattern

echo "==> crash-safety lint, flow rules (--engine=flow, JSON report)"
python -m repro.tools.lint src/ tests/ benchmarks/ --engine=flow \
    --format=json > LINT_flow.json
python -c "
import json
doc = json.load(open('LINT_flow.json'))
assert doc['ok'], doc['violations']
print(f\"flow engine clean over {doc['files_checked']} files\")
"

echo "==> thread-topology lint (--engine=threads, JSON report)"
python -m repro.tools.lint src/ tests/ benchmarks/ --engine=threads \
    --format=json > LINT_threads.json || true
python -c "
import json
doc = json.load(open('LINT_threads.json'))
baseline = json.load(open('scripts/lint_baselines.json'))['threads']
assert not doc['parse_errors'], doc['parse_errors']
count = len(doc['violations'])
assert count <= baseline, (
    f'{count} thread-topology findings exceed the baseline of '
    f'{baseline}: ' + json.dumps(doc['violations'], indent=2))
print(f\"threads engine: {count} findings (baseline {baseline}) \"
      f\"over {doc['files_checked']} files\")
"

if command -v ruff >/dev/null 2>&1; then
    echo "==> ruff"
    ruff check src tests
else
    echo "==> ruff not installed; skipping"
fi

if command -v mypy >/dev/null 2>&1; then
    echo "==> mypy"
    mypy
else
    echo "==> mypy not installed; skipping"
fi

echo "==> observability unit tests (tests/obs)"
python -m pytest -x -q tests/obs

echo "==> stats CLI smoke (python -m repro.tools.stats --json)"
python -m repro.tools.stats --json --kinds shadow --keys 48 \
    | python -c "
import json, sys
doc = json.load(sys.stdin)
assert doc['metrics']['counters']['tree.splits[kind=shadow]'] > 0
assert doc['trace']['counts'].get('repair', 0) > 0
print('stats CLI emitted valid JSON with nonzero split/repair counters')
"

echo "==> race detector: explorer sweep (python -m repro.tools.races)"
python -m repro.tools.races --seeds 3 --json \
    | python -c "
import json, sys
doc = json.load(sys.stdin)
assert doc['ok'], doc
print(f\"{doc['total_runs']} scenario runs, 0 findings\")
"

echo "==> shard subsystem tests (tests/shard + crash-during-recovery)"
python -m pytest -x -q tests/shard \
    tests/recovery/test_shard_crash_during_recovery.py

echo "==> recovery-scaling bench smoke (python -m repro.bench.shardrecovery)"
python -m repro.bench.shardrecovery --smoke --json \
    > BENCH_shard_recovery.json
python -c "
import json
doc = json.load(open('BENCH_shard_recovery.json'))
assert doc['parallel_beats_serial_at_4'], doc['results']
four = [p for p in doc['results'] if p['n_shards'] == 4][0]
print(f\"4-shard parallel recovery speedup {four['speedup']:.2f}x \"
      f\"over serial ({four['parallel']['keys_verified']} keys verified)\")
"

echo "==> hot-path bench smoke (python -m repro.bench.hotpath)"
python -m repro.bench.hotpath --smoke --json > BENCH_hotpath.json
python -c "
import json
doc = json.load(open('BENCH_hotpath.json'))
assert doc['ok'], doc['gate']
gate = doc['gate']
print(f\"hot-path gate at {gate['n_keys']} keys: \"
      f\"lookup x{gate['lookup_ratio']:.2f} \"
      f\"batched insert x{gate['batch_insert_ratio']:.2f} \"
      f\"(recovery spot check ok)\")
"

echo "==> instant-restart bench smoke (python -m repro.bench.instantrestart)"
python -m repro.bench.instantrestart --smoke --json \
    > BENCH_instant_restart.json
python -c "
import json
doc = json.load(open('BENCH_instant_restart.json'))
assert doc['ok'], doc
camp = doc['recrash_campaign']
print(f\"instant restart at 4 shards: ttfq {doc['ttfq_speedup_at_4']:.1f}x \"
      f\"faster than stop-the-world; recrash campaign passed \"
      f\"(victim {camp['victim']}, fsck errors {camp['fsck_errors']})\")
"

echo "==> WAL replay tests (tests/wal + recrash-during-replay campaign)"
python -m pytest -x -q tests/wal \
    tests/recovery/test_recrash_during_replay.py

echo "==> WAL layer under every lint engine (--engine=all)"
python -m repro.tools.lint src/repro/wal --engine=all

echo "==> WAL replay matrix smoke (python -m repro.bench.logvolume --matrix)"
python -m repro.bench.logvolume --matrix --smoke --json \
    > BENCH_wal_replay.json
python -c "
import json
doc = json.load(open('BENCH_wal_replay.json'))
assert doc['parallel_beats_serial_logical_at_4'], doc['results']
assert doc['elision_nonzero'], doc['results']
four = [p for p in doc['results'] if p['n_shards'] == 4][0]
par = four['modes']['parallel-logical']
print(f\"4-shard parallel-logical replay {four['logical_speedup']:.2f}x \"
      f\"over serial-logical ({par['elided']} records elided, \"
      f\"tail recovered: {par['recovered_tail']})\")
"

echo "==> serving subsystem tests (tests/serve)"
python -m pytest -x -q tests/serve

echo "==> serving layer under every lint engine (--engine=all)"
python -m repro.tools.lint src/repro/serve --engine=all

echo "==> serving bench smoke (python -m repro.bench.serving)"
python -m repro.bench.serving --smoke --json > BENCH_serving.json
python -c "
import json
doc = json.load(open('BENCH_serving.json'))
assert doc['ok'], doc
at16 = [p for p in doc['results'] if p['clients'] == 16][0]
print(f\"group commit at 16 clients: {at16['speedup']:.2f}x ops/s over \"
      f\"sync-per-commit ({at16['group']['ops_per_second']:.0f} ops/s, \"
      f\"{at16['group']['window_occupancy']:.1f} commits/window)\")
"

echo "==> tier-1 suite under the runtime sanitizer (REPRO_SANITIZE=1)"
REPRO_SANITIZE=1 python -m pytest -x -q

echo "==> all checks passed"
